"""Shared experiment plumbing: env knobs, configs, and table rendering."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.comm.costmodel import CostModel
from repro.runtime.config import EngineConfig

#: Work-density calibration used by the strong-scaling experiments: each
#: simulated tuple op is charged as κ ops so the compute-to-communication
#: ratio at a given rank count approximates the paper's (whose graphs are
#: orders of magnitude larger).  See EXPERIMENTS.md "Calibration".
SCALING_COMPUTE_SCALE = 64.0


@dataclass(frozen=True)
class ExperimentDefaults:
    """Per-invocation experiment sizing."""

    scale_shift: int
    full: bool
    seed: int = 42

    def ranks(self, full_list: Sequence[int], quick_list: Sequence[int]) -> List[int]:
        return list(full_list if self.full else quick_list)


def defaults_from_env(default_shift: int = 1) -> ExperimentDefaults:
    """Read ``REPRO_SCALE_SHIFT`` / ``REPRO_FULL`` from the environment."""
    shift = int(os.environ.get("REPRO_SCALE_SHIFT", default_shift))
    full = os.environ.get("REPRO_FULL", "0") == "1"
    return ExperimentDefaults(scale_shift=shift, full=full)


def optimized_config(
    n_ranks: int,
    *,
    edge_subbuckets: int = 8,
    cost_model: Optional[CostModel] = None,
    seed: int = 0xC0FFEE,
    tracer=None,
) -> EngineConfig:
    """PARALAGG with both §IV optimizations on (the paper's "O")."""
    return EngineConfig(
        n_ranks=n_ranks,
        dynamic_join=True,
        subbuckets={"edge": edge_subbuckets},
        cost_model=cost_model,
        seed=seed,
        tracer=tracer,
    )


def baseline_config(
    n_ranks: int,
    *,
    cost_model: Optional[CostModel] = None,
    seed: int = 0xC0FFEE,
    tracer=None,
) -> EngineConfig:
    """The paper's "B": no vote, no sub-buckets, and the static layout
    that serializes the large static relation (§V-B: edges "mistakenly
    placed" on the transmitted side)."""
    return EngineConfig(
        n_ranks=n_ranks,
        dynamic_join=False,
        static_outer="right",
        default_subbuckets=1,
        cost_model=cost_model,
        seed=seed,
        tracer=tracer,
    )


def scaling_cost_model() -> CostModel:
    return CostModel(compute_scale=SCALING_COMPUTE_SCALE)


# ------------------------------------------------------------------ display


def format_mmss(seconds: float) -> str:
    """``m:ss`` like paper Table I (sub-second shown as 0:0s.mmm)."""
    if seconds < 0:
        raise ValueError(f"negative duration {seconds}")
    m, s = divmod(seconds, 60.0)
    if m >= 1:
        return f"{int(m)}:{s:04.1f}"
    return f"0:{s:04.1f}" if s >= 10 else f"0:0{s:.2f}"


def format_si(x: float) -> str:
    """1234567 → '1.2M' (paper Table II's Edges/Paths columns)."""
    for div, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(x) >= div:
            return f"{x / div:.1f}{suffix}"
    return f"{x:.0f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Plain-text table with aligned columns."""
    table = [list(map(str, headers))] + [list(map(str, r)) for r in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(table[0], widths)))
    lines.append(sep)
    for row in table[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(series: Dict[str, Dict[int, float]], x_label: str, y_label: str) -> str:
    """Render named series over an integer x-axis (scaling figures)."""
    xs = sorted({x for ys in series.values() for x in ys})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row: List[object] = [x]
        for name in series:
            v = series[name].get(x)
            row.append("-" if v is None else f"{v:.4f}")
        rows.append(row)
    return render_table(headers, rows, title=f"{y_label} by {x_label}")
