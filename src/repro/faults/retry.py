"""Shared retry policy for both comm substrates.

Before this module existed the retransmission knobs lived in two places
with two different behaviours: :class:`repro.comm.simcluster.SimCluster`
counted attempts against ``max_retries`` directly, while
``repro.comm.asyncmpi.recv`` grew its per-attempt timeout by
``recv_backoff`` *without bound* — a long outage could stretch a single
receive to minutes of wall clock.  :class:`RetryPolicy` hoists the whole
policy — attempt budget, base timeout, backoff multiplier, timeout cap,
and deterministic jitter — into one frozen object both substrates share.

Jitter is deterministic by design: the simulator's contract is that a
replayed schedule re-draws exactly the same faults, so the jitter for
attempt *n* on channel *key* is a pure splitmix64 hash of
``(seed, key, n)``, not a live RNG draw.
"""

from __future__ import annotations

from dataclasses import dataclass

_MASK = 0xFFFFFFFFFFFFFFFF


def _splitmix64(x: int) -> int:
    """One round of splitmix64 — the repo's standard cheap mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return (x ^ (x >> 31)) & _MASK


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget + capped, jittered exponential backoff.

    Parameters
    ----------
    max_retries:
        How many *re*-transmissions are allowed after the first attempt.
        :meth:`exhausted` is the single exhaustion predicate both
        substrates consult.
    base_timeout:
        Receive patience for the first attempt (modeled wall seconds).
    backoff:
        Multiplier applied per timeout round (>= 1).
    max_timeout:
        Hard cap on the backed-off timeout.  Caps the previously
        unbounded ``timeout *= backoff`` growth in ``asyncmpi.recv``.
    jitter:
        Fraction of the capped timeout added as deterministic jitter in
        ``[0, jitter)`` — decorrelates retry rounds across channels
        without breaking replay determinism.
    seed:
        Root of the jitter hash (normally the fault-plane seed).
    """

    max_retries: int = 3
    base_timeout: float = 0.02
    backoff: float = 2.0
    max_timeout: float = 0.5
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_timeout <= 0:
            raise ValueError(f"base_timeout must be > 0, got {self.base_timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1.0, got {self.backoff}")
        if self.max_timeout < self.base_timeout:
            raise ValueError(
                f"max_timeout {self.max_timeout} must be >= base_timeout "
                f"{self.base_timeout}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    # ------------------------------------------------------------- predicates

    def exhausted(self, attempt: int) -> bool:
        """True when ``attempt`` (0-based retransmission count) is over budget."""
        return attempt > self.max_retries

    # -------------------------------------------------------------- timeouts

    def timeout_for(self, n_timeouts: int, key: int = 0) -> float:
        """Patience for the next receive after ``n_timeouts`` timeout rounds.

        Exponential in ``n_timeouts``, capped at :attr:`max_timeout`,
        plus a deterministic jitter fraction derived from
        ``(seed, key, n_timeouts)`` so distinct channels desynchronise.
        """
        base = min(self.base_timeout * self.backoff**n_timeouts, self.max_timeout)
        if self.jitter == 0.0:
            return base
        h = _splitmix64((self.seed & _MASK) ^ _splitmix64((key & _MASK) ^ n_timeouts))
        frac = (h >> 11) / float(1 << 53)  # uniform in [0, 1)
        return base * (1.0 + self.jitter * frac)
