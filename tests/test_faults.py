"""Tests for the fault plane: config parsing, deterministic injection,
checksums, conservation, and the SimCluster substrate integration."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.comm.costmodel import CostModel
from repro.comm.simcluster import SimCluster
from repro.faults import (
    ConservationError,
    FaultConfig,
    FaultPlane,
    MessageLossError,
    PermanentRankFailure,
    RankFailure,
    RetryPolicy,
    check_conservation,
    corrupt_payload,
    parse_fault_spec,
    payload_checksum,
)
from repro.faults.plane import classify_loss


class TestFaultConfig:
    def test_defaults_are_inert(self):
        fc = FaultConfig()
        assert not fc.has_crash
        assert not fc.has_message_faults

    def test_probability_ranges_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(drop=1.5)
        with pytest.raises(ValueError):
            FaultConfig(dup=-0.1)

    def test_crash_fields_must_pair(self):
        with pytest.raises(ValueError):
            FaultConfig(crash_rank=1)
        with pytest.raises(ValueError):
            FaultConfig(crash_superstep=3)

    def test_straggler_factor_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(stragglers={0: 0.5})

    def test_per_edge_rates(self):
        fc = FaultConfig(drop=0.1, per_edge={(0, 1): (0.5, 0.0, 0.0)})
        assert fc.rates_for(0, 1) == (0.5, 0.0, 0.0)
        assert fc.rates_for(1, 0) == (0.1, 0.0, 0.0)
        assert fc.has_message_faults


class TestParseFaultSpec:
    def test_full_spec(self):
        fc = parse_fault_spec(
            "crash=1@12,drop=0.02,dup=0.01,corrupt=0.005,"
            "straggle=2:3.5,seed=7,retries=5"
        )
        assert fc.crash_rank == 1 and fc.crash_superstep == 12
        assert fc.drop == 0.02 and fc.dup == 0.01 and fc.corrupt == 0.005
        assert fc.stragglers == {2: 3.5}
        assert fc.seed == 7 and fc.max_retries == 5

    def test_edge_spec(self):
        fc = parse_fault_spec("edge=0>1:0.5:0:0/2>3:0:0:0.25")
        assert fc.rates_for(0, 1) == (0.5, 0.0, 0.0)
        assert fc.rates_for(2, 3) == (0.0, 0.0, 0.25)

    def test_bad_specs_rejected(self):
        for bad in ("drop", "crash=1", "frobnicate=1", "drop=notanumber"):
            with pytest.raises(ValueError):
                parse_fault_spec(bad)

    def test_crash_perm_parsed(self):
        fc = parse_fault_spec("crash_perm=2@9,seed=3")
        assert fc.crash_perm_rank == 2 and fc.crash_perm_superstep == 9
        assert fc.has_crash and fc.has_permanent_crash
        assert parse_fault_spec("crash=1@5").has_permanent_crash is False

    def test_crash_perm_needs_superstep(self):
        with pytest.raises(ValueError, match="RANK@SUPERSTEP"):
            parse_fault_spec("crash_perm=2")

    def test_duplicate_keys_rejected(self):
        for bad in (
            "drop=0.1,drop=0.2",
            "seed=1,seed=2",
            "crash=1@5,crash=2@6",
            "edge=0>1:0.5:0:0,edge=1>0:0.5:0:0",
        ):
            with pytest.raises(ValueError, match="duplicate"):
                parse_fault_spec(bad)

    def test_probabilities_outside_unit_interval_rejected(self):
        for bad in ("drop=1.5", "dup=-0.1", "corrupt=1.0",
                    "edge=0>1:2.0:0:0"):
            with pytest.raises(ValueError, match=r"probability must be in"):
                parse_fault_spec(bad)

    def test_transient_and_permanent_crash_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            parse_fault_spec("crash=1@5,crash_perm=2@9")

    def test_duplicate_edge_and_straggler_rejected(self):
        with pytest.raises(ValueError, match="duplicate --faults edge"):
            parse_fault_spec("edge=0>1:0.5:0:0/0>1:0.2:0:0")
        with pytest.raises(ValueError, match="duplicate --faults straggler"):
            parse_fault_spec("straggle=2:3.0/2:4.0")


class TestRetryPolicy:
    def test_exhausted_respects_budget(self):
        policy = RetryPolicy(max_retries=2)
        assert not policy.exhausted(0)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)

    def test_backoff_capped(self):
        policy = RetryPolicy(
            base_timeout=0.02, backoff=2.0, max_timeout=0.1, jitter=0.0
        )
        timeouts = [policy.timeout_for(n) for n in range(10)]
        assert timeouts[0] == pytest.approx(0.02)
        assert timeouts[1] == pytest.approx(0.04)
        # Unbounded exponential would reach 10.24s by n=9; the cap wins.
        assert all(t <= 0.1 for t in timeouts)
        assert timeouts[-1] == pytest.approx(0.1)

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(
            base_timeout=0.02, backoff=2.0, max_timeout=0.5,
            jitter=0.25, seed=7,
        )
        for n in range(8):
            for key in range(4):
                base = min(0.02 * 2.0 ** n, 0.5)
                t = policy.timeout_for(n, key=key)
                assert base <= t <= base * 1.25
                # Pure hash, no live RNG: replays are bit-identical.
                assert t == policy.timeout_for(n, key=key)

    def test_jitter_decorrelates_receivers(self):
        policy = RetryPolicy(jitter=0.5, seed=1)
        values = {policy.timeout_for(3, key=k) for k in range(16)}
        assert len(values) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_timeout=0.2, max_timeout=0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_config_bundles_policy_for_both_substrates(self):
        fc = FaultConfig(
            max_retries=5, recv_timeout=0.01, recv_backoff=3.0,
            recv_timeout_cap=0.2, recv_jitter=0.05, seed=9,
        )
        policy = fc.retry_policy()
        assert policy.max_retries == 5
        assert policy.timeout_for(0) <= 0.01 * 1.05
        assert policy.timeout_for(99) <= 0.2 * 1.05


class TestFailureDetector:
    def test_classify_loss_escalates_toward_dead_endpoint(self):
        plane = FaultPlane(
            FaultConfig(crash_perm_rank=1, crash_perm_superstep=0), 4
        )
        plane.permanent.add(1)
        err = classify_loss(plane, 0, 1, attempt=4)
        assert isinstance(err, PermanentRankFailure)
        assert err.rank == 1
        # Dead *sender* detected too (its acks never come).
        assert isinstance(classify_loss(plane, 1, 2, 4), PermanentRankFailure)
        # A flaky link between live peers stays a message loss.
        err3 = classify_loss(plane, 0, 2, attempt=4)
        assert isinstance(err3, MessageLossError)
        assert not isinstance(err3, RankFailure)

    def test_permanent_crash_fires_and_counts(self):
        plane = FaultPlane(
            FaultConfig(crash_perm_rank=1, crash_perm_superstep=2), 4
        )
        assert plane.crash_due(0) is None
        assert plane.crash_due(2) == 1
        assert plane.is_permanent(1)
        assert plane.stats.crashes == 1
        assert plane.stats.permanent_crashes == 1
        with pytest.raises(PermanentRankFailure):
            plane.check_alive(3, "allreduce")

    def test_mark_restarted_refuses_permanent_loss(self):
        plane = FaultPlane(
            FaultConfig(crash_perm_rank=1, crash_perm_superstep=0), 4
        )
        plane.crash_due(0)
        with pytest.raises(ValueError, match="mark_excluded"):
            plane.mark_restarted(1)

    def test_mark_excluded_silences_rendezvous_but_stays_dead(self):
        plane = FaultPlane(
            FaultConfig(crash_perm_rank=1, crash_perm_superstep=0), 4
        )
        plane.crash_due(0)
        plane.mark_excluded(1)
        plane.check_alive(5, "allreduce")  # survivors proceed
        assert plane.is_permanent(1)
        assert 1 in plane.excluded

    def test_simcluster_escalates_exhaustion_toward_dead_rank(self):
        """Timeout-based detection: retry-budget exhaustion toward a
        permanently dead endpoint surfaces as PermanentRankFailure, not a
        plain message loss."""
        plane = FaultPlane(
            FaultConfig(
                seed=0,
                per_edge={(0, 1): (1.0 - 1e-12, 0.0, 0.0)},
                max_retries=2,
            ),
            2,
        )
        plane.permanent.add(1)  # detector state: peer is known-dead
        plane.excluded.add(1)
        cluster = SimCluster(2, fault_plane=plane)
        with pytest.raises(PermanentRankFailure):
            cluster.alltoallv({0: {1: [(1,)]}}, arity=1)


class TestChecksumAndCorruption:
    def test_checksum_stable_and_sensitive(self):
        payload = [(1, 2, 3), (4, 5, 6)]
        assert payload_checksum(payload) == payload_checksum([(1, 2, 3), (4, 5, 6)])
        assert payload_checksum(payload) != payload_checksum([(1, 2, 3), (4, 5, 7)])

    @given(st.integers(0, 2**32 - 1))
    def test_corruption_always_detected(self, seed):
        import random

        payload = [(3, 1, 4), (1, 5, 9), (2, 6, 5)]
        mutated = corrupt_payload(payload, random.Random(seed))
        assert payload_checksum(mutated) != payload_checksum(payload)

    def test_ndarray_corruption_flips_one_element(self):
        import random

        rows = np.arange(12, dtype=np.int64).reshape(4, 3)
        out = corrupt_payload([("box", rows)], random.Random(0))
        tag, mutated = out[0]
        assert tag == "box"
        assert (mutated != rows).sum() == 1
        assert rows.sum() == np.arange(12).sum()  # original untouched


class TestFaultPlaneDeterminism:
    def test_same_key_same_fate(self):
        plane_a = FaultPlane(FaultConfig(seed=3, drop=0.3, dup=0.3, corrupt=0.3), 4)
        plane_b = FaultPlane(FaultConfig(seed=3, drop=0.3, dup=0.3, corrupt=0.3), 4)
        payload = [(1, 2)]
        for step in range(8):
            for src in range(4):
                for dst in range(4):
                    a = plane_a.deliveries(step, src, dst, payload)
                    b = plane_b.deliveries(step, src, dst, payload)
                    assert [i for _, i in a] == [i for _, i in b]

    def test_attempt_decouples_draws(self):
        plane = FaultPlane(FaultConfig(seed=0, drop=0.99), 2)
        # With p=0.99 nearly every first attempt drops; some retry
        # attempt must eventually get through (independent draws).
        fates = [bool(plane.deliveries(0, 0, 1, "x", attempt=a)) for a in range(64)]
        assert any(fates)

    def test_crash_fires_once(self):
        plane = FaultPlane(FaultConfig(crash_rank=1, crash_superstep=2), 4)
        assert plane.crash_due(0) is None
        assert plane.crash_due(2) == 1
        with pytest.raises(RankFailure):
            plane.check_alive(3, "allreduce")
        plane.mark_restarted(1)
        assert plane.crash_due(5) is None  # replay does not re-kill
        plane.check_alive(5, "allreduce")  # healthy again

    def test_straggler_scale(self):
        plane = FaultPlane(FaultConfig(stragglers={2: 4.0}), 4)
        scale = plane.straggler_scale()
        assert scale.tolist() == [1.0, 1.0, 4.0, 1.0]
        assert FaultPlane(FaultConfig(), 4).straggler_scale() is None

    def test_out_of_range_ranks_rejected(self):
        with pytest.raises(ValueError):
            FaultPlane(FaultConfig(crash_rank=9, crash_superstep=1), 4)
        with pytest.raises(ValueError):
            FaultPlane(FaultConfig(stragglers={9: 2.0}), 4)


class TestConservation:
    def test_balanced_ok(self):
        check_conservation(10, 10)
        check_conservation(10, 13, 3)

    def test_violation_raises(self):
        with pytest.raises(ConservationError):
            check_conservation(10, 9)
        with pytest.raises(ConservationError):
            check_conservation(10, 12, 1)


def _exchange(cluster, n=4):
    """All-pairs exchange of distinct tuples; returns recv dict."""
    sends = {
        src: {dst: [(src, dst, k) for k in range(3)] for dst in range(n)}
        for src in range(n)
    }
    return cluster.alltoallv(sends, arity=3, phase="comm")


class TestSimClusterFaults:
    def test_fault_free_recv_unchanged(self):
        clean = _exchange(SimCluster(4))
        plane = FaultPlane(FaultConfig(seed=5, drop=0.3, dup=0.2, corrupt=0.2), 4)
        faulty = _exchange(SimCluster(4, fault_plane=plane))
        # Retransmission + source-order reassembly: the delivered
        # sequences match a fault-free exchange except for duplicates,
        # which appear adjacent to their original.
        for dst in clean:
            dedup = []
            for t in faulty[dst]:
                if not dedup or dedup[-1] != t or clean[dst].count(t) > dedup.count(t):
                    dedup.append(t)
            assert set(faulty[dst]) == set(clean[dst])
        assert plane.stats.drops + plane.stats.dups + plane.stats.corruptions > 0

    def test_drop_only_recv_identical(self):
        clean = _exchange(SimCluster(4))
        plane = FaultPlane(FaultConfig(seed=1, drop=0.3, max_retries=8), 4)
        faulty = _exchange(SimCluster(4, fault_plane=plane))
        assert faulty == clean
        assert plane.stats.drops > 0
        assert plane.stats.retransmits == plane.stats.drops

    def test_corrupt_only_recv_identical_and_detected(self):
        clean = _exchange(SimCluster(4))
        plane = FaultPlane(FaultConfig(seed=2, corrupt=0.4), 4)
        faulty = _exchange(SimCluster(4, fault_plane=plane))
        assert faulty == clean
        assert plane.stats.corruptions > 0
        assert plane.stats.detected_corruptions == plane.stats.corruptions

    def test_retransmits_charged_to_ledger(self):
        plane = FaultPlane(FaultConfig(seed=1, drop=0.3, max_retries=8), 4)
        cluster = SimCluster(4, fault_plane=plane)
        _exchange(cluster)
        kinds = [e.kind for e in cluster.ledger.comm.events]
        assert "retransmit" in kinds
        assert cluster.ledger.comm.by_kind.get("retransmit", 0) > 0  # bytes

    def test_loss_budget_exhaustion(self):
        plane = FaultPlane(
            FaultConfig(seed=0, per_edge={(0, 1): (1.0 - 1e-12, 0.0, 0.0)},
                        max_retries=2),
            2,
        )
        cluster = SimCluster(2, fault_plane=plane)
        with pytest.raises(MessageLossError):
            cluster.alltoallv({0: {1: [(1,)]}}, arity=1)

    def test_crash_detected_at_collective(self):
        plane = FaultPlane(FaultConfig(crash_rank=1, crash_superstep=1), 4)
        cluster = SimCluster(4, fault_plane=plane)
        cluster.barrier()  # superstep 0: before the crash
        with pytest.raises(RankFailure) as exc:
            cluster.allreduce([1, 1, 1, 1])
        assert exc.value.rank == 1
        assert any(e.kind == "fault_detect" for e in cluster.ledger.comm.events)

    def test_straggler_stretches_compute(self):
        plane = FaultPlane(FaultConfig(stragglers={1: 5.0}), 4)
        slow = SimCluster(4, fault_plane=plane)
        fast = SimCluster(4)
        work = np.array([1.0, 1.0, 1.0, 1.0])
        slow.ledger.add_compute_step("join", work)
        fast.ledger.add_compute_step("join", work)
        assert slow.ledger.phase("join") == 5.0 * fast.ledger.phase("join")

    def test_inert_plane_costs_nothing(self):
        clean = SimCluster(4)
        planed = SimCluster(4, fault_plane=FaultPlane(FaultConfig(), 4))
        _exchange(clean)
        _exchange(planed)
        assert planed.ledger.comm.bytes_total == clean.ledger.comm.bytes_total
        assert planed.ledger.total_seconds() == clean.ledger.total_seconds()

    def test_p2p_retransmits_under_drops(self):
        plane = FaultPlane(FaultConfig(seed=4, drop=0.3, max_retries=8), 2)
        cluster = SimCluster(2, fault_plane=plane)
        clean = SimCluster(2)
        msgs = [(0, 1, ("m", k), 16) for k in range(32)]
        got_faulty = cluster.p2p_exchange(msgs)
        got_clean = clean.p2p_exchange(msgs)
        assert {d: sorted(v) for d, v in got_faulty.items()} == {
            d: sorted(v) for d, v in got_clean.items()
        }
        assert plane.stats.drops > 0
