"""Connected components via recursive ``$MIN`` label propagation (§V-A).

The paper's query (with the join made explicit — labels flow across an
edge from ``x`` to ``y``)::

    cc(n, n)          ← edge(n, _).
    cc(y, $MIN(z))    ← cc(x, z), edge(x, y).
    cc_rep(n)         ← cc(_, n).

``$MIN`` canonicalizes each component to its minimum vertex id, storing one
accumulator per vertex — the "compression" that lets recursive aggregation
succeed where vanilla Datalog materializes a quadratic node product and
runs out of memory.  ``cc_rep`` (a later stratum) projects the distinct
representatives; its cardinality is the component count ("Comp" in paper
Table II).

Edges must be symmetrized for undirected components; :func:`run_cc` does
this by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.graphs.types import Graph
from repro.planner.ast import EdbDecl, MIN, Program, Rel, Var, vars_
from repro.runtime.config import EngineConfig
from repro.runtime.engine import Engine
from repro.runtime.result import FixpointResult


def cc_program(edge_subbuckets: int = 1) -> Program:
    """Build the CC program (paper §V-A)."""
    cc, cc_rep, edge = Rel("cc"), Rel("cc_rep"), Rel("edge")
    x, y, z, n = vars_("x y z n")
    wild = Var("_")
    return Program(
        rules=[
            cc(n, MIN(n)) <= edge(n, wild),
            cc(y, MIN(z)) <= (cc(x, z), edge(x, y)),
            cc_rep(n) <= cc(wild, n),
        ],
        edb=[EdbDecl("edge", arity=2, join_cols=(0,), n_subbuckets=edge_subbuckets)],
    )


@dataclass
class CcResult:
    """CC outputs plus the underlying fixpoint result."""

    fixpoint: FixpointResult
    #: vertex → component representative (min vertex id in the component).
    labels: Dict[int, int]
    #: Number of components among non-isolated vertices ("Comp", Table II).
    n_components: int
    iterations: int


def run_cc(
    graph: Graph,
    config: Optional[EngineConfig] = None,
    *,
    symmetrize: bool = True,
    edge_subbuckets: Optional[int] = None,
) -> CcResult:
    """Run connected components.

    ``symmetrize`` adds reverse edges first (undirected semantics, as the
    paper's CC requires); weights, if present, are dropped.
    """
    config = config or EngineConfig()
    g = graph
    if g.weighted:
        from repro.graphs.types import Graph as _G

        g = _G(g.edges[:, :2], g.n_nodes, name=g.name, category=g.category)
    g = g.deduplicated()
    if symmetrize:
        g = g.symmetrized()
    n_sub = (
        edge_subbuckets
        if edge_subbuckets is not None
        else config.subbuckets.get("edge", config.default_subbuckets)
    )
    engine = Engine(cc_program(edge_subbuckets=n_sub), config)
    engine.load("edge", g.edges)  # ndarray fast path (no tuple boxing)
    result = engine.run()
    labels = {t[0]: t[1] for t in result.query("cc")}
    reps = {t[0] for t in result.query("cc_rep")}
    return CcResult(
        fixpoint=result,
        labels=labels,
        n_components=len(reps),
        iterations=result.iterations,
    )
