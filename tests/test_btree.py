"""Tests for the B-tree (PARALAGG's nested-index substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ds.btree import BTreeMap, BTreeSet

KEYS = st.integers(min_value=-1000, max_value=1000)


class TestBTreeMapBasics:
    def test_empty(self):
        t = BTreeMap()
        assert len(t) == 0
        assert not t
        assert 1 not in t
        assert t.get(1) is None
        assert t.get(1, "d") == "d"

    def test_insert_get(self):
        t = BTreeMap()
        t[3] = "c"
        t[1] = "a"
        t[2] = "b"
        assert (t[1], t[2], t[3]) == ("a", "b", "c")
        assert len(t) == 3

    def test_overwrite_keeps_len(self):
        t = BTreeMap()
        t[1] = "x"
        t[1] = "y"
        assert len(t) == 1 and t[1] == "y"

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            BTreeMap()[0]

    def test_setdefault(self):
        t = BTreeMap()
        assert t.setdefault(1, "a") == "a"
        assert t.setdefault(1, "b") == "a"

    def test_tuple_keys_sorted_iteration(self):
        t = BTreeMap()
        for k in [(2, 1), (1, 9), (1, 2), (3, 0)]:
            t[k] = None
        assert list(t) == [(1, 2), (1, 9), (2, 1), (3, 0)]

    def test_min_max(self):
        t = BTreeMap()
        for k in [5, 3, 9, 1]:
            t[k] = k
        assert t.min_key() == 1 and t.max_key() == 9

    def test_min_max_empty_raise(self):
        with pytest.raises(KeyError):
            BTreeMap().min_key()
        with pytest.raises(KeyError):
            BTreeMap().max_key()

    def test_min_degree_validation(self):
        with pytest.raises(ValueError):
            BTreeMap(min_degree=1)

    def test_init_from_items(self):
        t = BTreeMap([(i, i * i) for i in range(50)], min_degree=2)
        assert len(t) == 50 and t[7] == 49

    def test_repr(self):
        assert "BTreeMap" in repr(BTreeMap())


class TestBTreeMapBulk:
    @pytest.mark.parametrize("min_degree", [2, 3, 16])
    def test_many_inserts_sorted(self, min_degree):
        import random

        rnd = random.Random(7)
        keys = list(range(500))
        rnd.shuffle(keys)
        t = BTreeMap(min_degree=min_degree)
        for k in keys:
            t[k] = k * 2
        assert list(t) == sorted(keys)
        t.check_invariants()
        assert t.depth() > 1

    @pytest.mark.parametrize("min_degree", [2, 3, 16])
    def test_delete_half(self, min_degree):
        t = BTreeMap(min_degree=min_degree)
        for k in range(300):
            t[k] = k
        for k in range(0, 300, 2):
            del t[k]
        t.check_invariants()
        assert list(t) == list(range(1, 300, 2))

    def test_delete_all_then_reuse(self):
        t = BTreeMap(min_degree=2)
        for k in range(100):
            t[k] = k
        for k in range(100):
            del t[k]
        assert len(t) == 0
        t[5] = "again"
        assert t[5] == "again"

    def test_delete_missing_raises(self):
        t = BTreeMap()
        t[1] = 1
        with pytest.raises(KeyError):
            del t[2]

    def test_pop(self):
        t = BTreeMap()
        t[1] = "a"
        assert t.pop(1) == "a"
        assert t.pop(1, "default") == "default"
        with pytest.raises(KeyError):
            t.pop(1)

    def test_discard(self):
        t = BTreeMap()
        t[1] = "a"
        assert t.discard(1) is True
        assert t.discard(1) is False


class TestBTreeRange:
    def setup_method(self):
        self.t = BTreeMap(min_degree=3)
        for k in range(0, 100, 3):  # 0,3,...,99
            self.t[k] = str(k)

    def test_range_window(self):
        got = [k for k, _ in self.t.range(10, 31)]
        assert got == [12, 15, 18, 21, 24, 27, 30]

    def test_range_open_ends(self):
        assert [k for k, _ in self.t.range()] == list(range(0, 100, 3))
        assert [k for k, _ in self.t.range(90)] == [90, 93, 96, 99]
        assert [k for k, _ in self.t.range(None, 7)] == [0, 3, 6]

    def test_range_empty_window(self):
        assert list(self.t.range(40, 40)) == []


@settings(max_examples=60)
@given(
    st.lists(
        st.tuples(st.sampled_from(["set", "del"]), KEYS),
        max_size=200,
    )
)
def test_btree_matches_dict_model(ops):
    """Property: a BTreeMap behaves exactly like a dict under set/del."""
    t = BTreeMap(min_degree=2)
    model = {}
    for op, k in ops:
        if op == "set":
            t[k] = k
            model[k] = k
        else:
            assert t.discard(k) == (model.pop(k, None) is not None)
    assert len(t) == len(model)
    assert list(t.items()) == sorted(model.items())
    t.check_invariants()


class TestBTreeSet:
    def test_add_dedup(self):
        s = BTreeSet()
        assert s.add(5) is True
        assert s.add(5) is False
        assert len(s) == 1

    def test_init_iterable_and_contains(self):
        s = BTreeSet([3, 1, 2, 1])
        assert len(s) == 3
        assert 2 in s and 9 not in s
        assert list(s) == [1, 2, 3]

    def test_discard(self):
        s = BTreeSet([1])
        assert s.discard(1) is True
        assert s.discard(1) is False
        assert not s

    def test_range(self):
        s = BTreeSet(range(10))
        assert list(s.range(3, 6)) == [3, 4, 5]

    def test_repr_and_invariants(self):
        s = BTreeSet(range(64))
        assert "BTreeSet" in repr(s)
        s.check_invariants()
