"""Columnar batch kernels for the fixpoint hot path.

``repro.kernels`` is the vectorized twin of the engine's per-tuple
pipeline: every phase consumes and produces ``numpy`` int64 row-blocks
(:class:`~repro.kernels.block.TupleBlock`) instead of Python tuple lists.

The layer is **behaviour-preserving by construction**: each kernel
replays the scalar path's sequential semantics (arrival order inside a
shard, nested Δ ordering, per-occurrence admitted counts) with array
operations, so ledger charges, Δ contents, and all rank-invariance
properties are bit-for-bit identical across ``EngineConfig.executor``
settings.  See DESIGN.md §8 for the layout and the fallback rules.
"""

from repro.kernels.block import TupleBlock, concat_ranges, lex_group
from repro.kernels.absorb import (
    ColumnarAggregateShard,
    ColumnarPlainShard,
    vector_combiner,
)
from repro.kernels.join import RankJoinIndex
from repro.kernels.route import build_intra_sends, build_route_sends

__all__ = [
    "TupleBlock",
    "concat_ranges",
    "lex_group",
    "ColumnarPlainShard",
    "ColumnarAggregateShard",
    "vector_combiner",
    "RankJoinIndex",
    "build_intra_sends",
    "build_route_sends",
]
