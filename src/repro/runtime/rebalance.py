"""Online adaptive spatial rebalancing (paper §IV-C, closed-loop; PR 8).

The static engine fixes every relation's sub-bucket count up front
(``Schema.n_subbuckets``), and the PR 6 skew doctor merely *reports* when
a hot join key concentrates a relation on one bucket.  This module closes
the loop: every ``EngineConfig.rebalance_every`` iterations of a
recursive stratum the engine measures per-bucket occupancy, and past a
configurable top-bucket/Gini threshold it grows the offending relation's
sub-bucket count **mid-fixpoint**, re-hashing the shards and moving rows
through an intra-bucket alltoallv redistribution exchange.

Correctness story, proven by ``tests/test_rebalance.py``:

* the exchange preserves the exact tuple multiset of both versions
  (full and Δ) — property-tested over arbitrary shard contents;
* a tuple's bucket never changes on a resize (join columns and hash
  seed are fixed), so redistribution is purely intra-bucket traffic;
* results, Δ trajectories and iteration counts are bit-identical to a
  static run under both executors — only placement (and hence modeled
  time) moves;
* the trigger is a pure function of replicated post-checkpoint state,
  and the manager's bookkeeping rides in stratum checkpoints, so crash
  rollback replays every rebalance decision deterministically.

Cost honesty: the periodic decision is charged as an allgather (each
rank contributes its bucket occupancy), and the exchange goes through
the PR 7 wire layer — codec-encoded payloads charged at encoded bytes
to the α–β model, recorded as a ``rebalance`` CommEvent/CommMatrix
channel and a ``rebalance`` trace instant.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.comm.wire import WireConfig, encoded_nbytes
from repro.core.balancer import recommend_subbuckets
from repro.kernels.route import build_reshard_sends, decode_reshard_box
from repro.obs.analysis import gini

#: Ledger/timer phase and CommMatrix channel for everything this module does.
REBALANCE_PHASE = "rebalance"


@dataclass(frozen=True)
class SkewMeasure:
    """Per-bucket occupancy summary of one relation (the trigger input)."""

    total: int
    top_share: float
    gini: float
    n_buckets: int


@dataclass
class RebalanceEvent:
    """One executed mid-fixpoint resize (surfaced on the result/trace)."""

    relation: str
    stratum: int
    iteration: int
    old_subbuckets: int
    new_subbuckets: int
    #: Which policy chose the target: ``"recommend"`` (first trigger,
    #: seeded from :func:`repro.core.balancer.recommend_subbuckets`) or
    #: ``"double"`` (subsequent growth).
    policy: str
    top_share: float
    gini: float
    total_tuples: int
    shipped_tuples: int
    moved_tuples: int
    wire_bytes: int
    #: Fault-plane superstep of the redistribution exchange (-1 without a
    #: fault plane) — lets chaos tests aim a crash mid-rebalance.
    superstep: int

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def measure_bucket_skew(rel) -> Optional[SkewMeasure]:
    """Bucket-occupancy skew of one relation (the skew doctor's math).

    Sums full sizes per bucket over the live shards; order-independent,
    so scalar and columnar stores (whose shard dicts grow in different
    orders) measure identically.
    """
    by_bucket: Dict[int, int] = {}
    for (bucket, _sub), shard in rel.shards.items():
        by_bucket[bucket] = by_bucket.get(bucket, 0) + shard.full_size()
    sizes = [v for v in by_bucket.values() if v > 0]
    total = sum(sizes)
    if total <= 0:
        return None
    return SkewMeasure(
        total=total,
        top_share=max(sizes) / total,
        gini=gini(sizes),
        n_buckets=len(sizes),
    )


def reshard_relation(
    rel,
    n_subbuckets: int,
    cluster,
    *,
    wire: Optional[WireConfig] = None,
    phase: str = REBALANCE_PHASE,
) -> Dict[str, int]:
    """Resize ``rel`` to ``n_subbuckets`` via the redistribution exchange.

    Standalone (no Engine needed — the property tests drive it directly):

    1. export every old shard's full and Δ version blocks (identical
       across executors: both produce the nested scalar iteration order);
    2. re-hash each row under the new placement and build per-(bucket,
       new sub-bucket) boxes, codec-encoded (:mod:`repro.comm.wire`);
    3. one alltoallv charged at encoded bytes, ``kind="rebalance"``,
       into the CommMatrix ``rebalance`` channel;
    4. install the received fragments into a fresh shard map in
       deterministic source-rank order.

    Nothing is mutated before the collective returns, so a rank crash
    surfacing inside the exchange leaves the relation untouched for
    checkpoint rollback.  Returns shipped/moved/byte totals.
    """
    if n_subbuckets == rel.schema.n_subbuckets:
        return {"shipped": 0, "moved": 0, "wire_bytes": 0}
    new_schema = dataclasses.replace(rel.schema, n_subbuckets=n_subbuckets)
    new_dist = rel.dist.with_subbuckets(n_subbuckets)
    codec = wire.codec if (wire is not None and wire.enabled) else "raw"
    collective = (
        wire.alltoallv if (wire is not None and wire.enabled) else "direct"
    )
    blocks: List[Tuple[int, int, np.ndarray]] = []
    for key in sorted(rel.shards):
        shard = rel.shards[key]
        src = rel.dist.owner(*key)
        for kind, version in ((0, "full"), (1, "delta")):
            rows = shard.version_block(version)
            if rows.shape[0]:
                blocks.append((src, kind, rows))
    sends, n_shipped, n_moved = build_reshard_sends(blocks, new_dist, codec)
    wire_bytes = sum(
        encoded_nbytes(box[4])
        for src, per_dst in sends.items()
        for dst, boxes in per_dst.items()
        if dst != src
        for box in boxes
    )
    recv = cluster.alltoallv(
        sends,
        arity=new_schema.arity,
        phase=phase,
        kind="rebalance",
        channel="rebalance",
        count_of=lambda box: box[3],
        nbytes_of=lambda box: encoded_nbytes(box[4]),
        collective=collective,
    )
    arity = new_schema.arity
    parts: Dict[Tuple[int, int], Tuple[list, list]] = {}
    # The fault plane models at-least-once delivery; absorb-style
    # exchanges shrug off duplicates via set semantics, but this install
    # replaces shard state wholesale, so drop re-deliveries by the box's
    # transport sequence number.
    seen: Set[int] = set()
    for dst in sorted(recv):
        for box in recv[dst]:
            if box[5] in seen:
                continue
            seen.add(box[5])
            b, s, kind, rows = decode_reshard_box(box, arity, codec)
            entry = parts.setdefault((b, s), ([], []))
            entry[kind].append(rows)
    empty = np.empty((0, arity), dtype=np.int64)
    shard_states = {
        key: (
            np.vstack(full_list) if full_list else empty,
            np.vstack(delta_list) if delta_list else empty,
        )
        for key, (full_list, delta_list) in parts.items()
    }
    rel.install_reshard(new_schema, shard_states)
    return {"shipped": n_shipped, "moved": n_moved, "wire_bytes": wire_bytes}


class RebalanceManager:
    """The engine's online rebalancing policy and bookkeeping.

    Stateless between runs except for the event log and the set of
    relations whose first resize consulted the offline recommender —
    both captured into stratum checkpoints (via :meth:`state`) so a
    crash rollback replays decisions bit-for-bit.
    """

    def __init__(self, config) -> None:
        self.config = config
        self.events: List[RebalanceEvent] = []
        #: Relations whose first trigger already seeded from the offline
        #: recommender; later triggers plain-double.
        self._seeded: Set[str] = set()

    # ------------------------------------------------------- checkpoint state

    def state(self) -> Dict[str, object]:
        return {
            "events_len": len(self.events),
            "seeded": tuple(sorted(self._seeded)),
        }

    def restore_state(self, state: Optional[Dict[str, object]]) -> None:
        if state is None:
            return
        del self.events[int(state["events_len"]):]
        self._seeded = set(state["seeded"])

    # --------------------------------------------------------------- policy

    def eligible_names(self, store) -> List[str]:
        """Relations a sub-bucket resize can help: those with non-join
        independent columns (the sub-bucket hash input)."""
        return sorted(
            name
            for name, rel in store.relations.items()
            if rel.schema.other_cols
        )

    def _target_subbuckets(
        self, rel, measure: SkewMeasure
    ) -> Optional[Tuple[int, str]]:
        """Trigger test + target count for one relation; None = keep."""
        cfg = self.config
        n_sub = rel.schema.n_subbuckets
        if n_sub >= cfg.rebalance_max_subbuckets:
            return None
        if measure.total < cfg.rebalance_min_tuples:
            return None
        if measure.top_share < cfg.rebalance_threshold:
            return None
        # Projected tuples on the hottest rank relative to the mean, if
        # the top bucket's mass splits across the current fan-out.  Once
        # the fan-out covers the skew this drops under the factor and
        # growth self-extinguishes.
        overload = measure.top_share * rel.n_ranks / n_sub
        if overload < cfg.rebalance_factor:
            return None
        doubled = min(n_sub * 2, cfg.rebalance_max_subbuckets)
        if rel.schema.name not in self._seeded:
            # First trigger: seed from the offline recommender (satellite
            # of the paper's "if ... still imbalanced" rule), never less
            # than one doubling.
            self._seeded.add(rel.schema.name)
            recommended, _report = recommend_subbuckets(
                list(rel.iter_full()),
                rel.schema,
                rel.n_ranks,
                max_subbuckets=cfg.rebalance_max_subbuckets,
                seed=rel.dist.seed,
            )
            target = max(doubled, recommended)
            return min(target, cfg.rebalance_max_subbuckets), "recommend"
        return doubled, "double"

    # ----------------------------------------------------------------- hook

    def maybe_rebalance(self, engine, stratum, iteration: int) -> int:
        """The engine's periodic hook: measure, decide, redistribute.

        Runs at an iteration boundary (Δs advanced, no pending absorbs).
        Charges one decision allgather per check — each rank contributes
        its local bucket occupancy — then executes every triggered
        resize.  Returns the number of relations resized.
        """
        store = engine.store
        names = self.eligible_names(store)
        if not names:
            return 0
        cluster = engine.cluster
        plane = engine.fault_plane
        n_resized = 0
        with engine.timer.phase(REBALANCE_PHASE):
            # The decision rendezvous: bucket occupancies are replicated
            # so every rank reaches the same verdict.  Also the first
            # crash point of a rebalance round.
            cluster.allgather(
                [len(names)] * engine.config.n_ranks,
                nbytes_per_rank=2 * 8 * len(names),
                phase=REBALANCE_PHASE,
            )
            for name in names:
                rel = store[name]
                measure = measure_bucket_skew(rel)
                if measure is None:
                    continue
                decision = self._target_subbuckets(rel, measure)
                if decision is None:
                    continue
                target, policy = decision
                old_n = rel.schema.n_subbuckets
                step = plane.superstep if plane is not None else -1
                info = reshard_relation(
                    rel,
                    target,
                    cluster,
                    wire=engine.wire,
                    phase=REBALANCE_PHASE,
                )
                # The relation's schema object changed; keep the compiled
                # program's view (used by routing and explain) in sync and
                # drop every join index built under the old placement.
                engine.compiled.schemas[name] = rel.schema
                engine._index_cache.clear()
                event = RebalanceEvent(
                    relation=name,
                    stratum=stratum.index,
                    iteration=iteration,
                    old_subbuckets=old_n,
                    new_subbuckets=rel.schema.n_subbuckets,
                    policy=policy,
                    top_share=measure.top_share,
                    gini=measure.gini,
                    total_tuples=measure.total,
                    shipped_tuples=info["shipped"],
                    moved_tuples=info["moved"],
                    wire_bytes=info["wire_bytes"],
                    superstep=step,
                )
                self.events.append(event)
                # Tallied into engine counters (not read off the cluster
                # at the end) so checkpoint rollback rewinds them.
                engine.counters["rebalance_events"] += 1
                engine.counters["rebalance_shipped_tuples"] += info["shipped"]
                engine.counters["rebalance_moved_tuples"] += info["moved"]
                engine.counters["rebalance_wire_bytes"] += info["wire_bytes"]
                engine.tracer.instant(
                    "rebalance", cat=REBALANCE_PHASE, attrs=event.to_dict()
                )
                n_resized += 1
        return n_resized
