"""Iteration-boundary checkpoints and recovery bookkeeping.

A :class:`StratumCheckpoint` is a coordinated snapshot of everything a
stratum's fixpoint loop mutates: the shards of every relation in the
stratum (deep-copied, so later iterations cannot alias into it), the
engine's tuple counters, and the loop's position.  Because the simulated
cluster is one process, "each rank writes its shard partition to stable
storage" collapses to a deep copy — the *modeled* cost of the parallel
write is still charged to the ledger by the engine
(:meth:`repro.comm.costmodel.CostModel.checkpoint_write`).

Restores deep-copy *out of* the snapshot, so one checkpoint survives any
number of rollbacks (repeated failures within one interval all recover
from the same boundary).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.comm.costmodel import BYTES_PER_WORD
from repro.faults.plane import InjectionStats

TupleT = Tuple[int, ...]


@dataclass
class RelationSnapshot:
    """Frozen shard state of one relation (plus version generations).

    ``schema`` pins the relation's sub-bucket map at capture time: with
    the online rebalancer active, ``n_subbuckets`` is mutable engine
    state, and a rollback must revert the placement together with the
    shards or replayed iterations would route tuples under a map the
    restored shards were never hashed by.
    """

    shards: dict
    full_gen: int
    delta_gen: int
    tuples: int
    nbytes: int
    schema: Optional[object] = None


@dataclass
class StratumCheckpoint:
    """One coordinated snapshot of a stratum's mutable state.

    ``iteration == -1`` marks the pre-seed checkpoint (the stratum has not
    run its naive pass yet); ``iteration == k >= 0`` means iterations
    ``0..k`` are fully absorbed and Δ-advanced.
    """

    stratum: int
    iteration: int
    changed: bool
    #: Engine-level totals at capture time, restored verbatim on rollback
    #: so replayed work is not double-counted.
    iterations_total: int
    counters: Dict[str, int]
    trace_len: int
    relations: Dict[str, RelationSnapshot] = field(default_factory=dict)
    #: Opaque online-rebalancer bookkeeping (event-log length, seeded
    #: relations) captured alongside the shards; ``None`` when the
    #: rebalancer is off.
    rebalance: Optional[Dict[str, object]] = None
    #: Ranks alive at capture time (the buddy ring is computed over
    #: these); ``None`` when replication is off.
    live_ranks: Optional[List[int]] = None

    @property
    def tuples(self) -> int:
        return sum(snap.tuples for snap in self.relations.values())

    @property
    def nbytes(self) -> int:
        return sum(snap.nbytes for snap in self.relations.values())

    def rank_nbytes(self, store, rank: int) -> int:
        """Checkpointed bytes owned by one rank (the failed rank's shard)."""
        total = 0
        for name in self.relations:
            rel = store[name]
            total += int(rel.full_sizes_by_rank()[rank]) * rel.schema.arity * BYTES_PER_WORD
        return total


def capture(
    store,
    names,
    *,
    stratum: int,
    iteration: int,
    changed: bool,
    iterations_total: int,
    counters: Dict[str, int],
    trace_len: int,
) -> StratumCheckpoint:
    """Snapshot the named relations (deep copy) plus loop position."""
    ckpt = StratumCheckpoint(
        stratum=stratum,
        iteration=iteration,
        changed=changed,
        iterations_total=iterations_total,
        counters=dict(counters),
        trace_len=trace_len,
    )
    for name in sorted(names):
        rel = store[name]
        tuples = rel.full_size()
        ckpt.relations[name] = RelationSnapshot(
            shards=copy.deepcopy(rel.shards),
            full_gen=rel.full_gen,
            delta_gen=rel.delta_gen,
            tuples=tuples,
            nbytes=tuples * rel.schema.arity * BYTES_PER_WORD,
            schema=rel.schema,
        )
    return ckpt


def restore(store, ckpt: StratumCheckpoint) -> None:
    """Roll the named relations back to the checkpoint's shard state.

    Deep-copies out of the snapshot (the checkpoint stays reusable) and
    invalidates each relation's probe cache — the restored shard objects
    are new, and the cache's shard-count token alone cannot detect that.
    """
    for name, snap in ckpt.relations.items():
        rel = store[name]
        if snap.schema is not None and snap.schema is not rel.schema:
            # Rebalance happened after this checkpoint: revert the
            # placement to the captured sub-bucket map (rebuilds the
            # Distribution and clears the probe caches).
            rel.set_schema(snap.schema)
        rel.shards = copy.deepcopy(snap.shards)
        rel.full_gen = snap.full_gen
        rel.delta_gen = snap.delta_gen
        rel._probe_cache.clear()
        rel._probe_cache_token = -1


def replica_buddies(rank: int, live_ranks, replicas: int) -> List[int]:
    """The buddy ring: ranks mirroring ``rank``'s snapshot.

    Buddies of ``live[i]`` are ``live[i+1 .. i+replicas]`` (mod the live
    count) — a ring over the *live* ranks at capture time, so buddies are
    always candidates to survive the holder.  Deterministic and
    computable by every rank without coordination.
    """
    live = sorted(live_ranks)
    if rank not in live or replicas <= 0 or len(live) <= 1:
        return []
    i = live.index(rank)
    n = len(live)
    out: List[int] = []
    for k in range(1, min(replicas, n - 1) + 1):
        out.append(live[(i + k) % n])
    return out


@dataclass
class RecoveryStats:
    """Fault, checkpoint and recovery accounting for one run."""

    checkpoints: int = 0
    checkpoint_tuples: int = 0
    checkpoint_bytes: int = 0
    checkpoint_seconds: float = 0.0
    #: Buddy-replication traffic (``replicas`` mirror copies per
    #: checkpoint), charged on top of the local checkpoint write.
    replica_bytes: int = 0
    replica_seconds: float = 0.0
    failures: int = 0
    recoveries: int = 0
    rolled_back_iterations: int = 0
    recovery_seconds: float = 0.0
    injected: InjectionStats = field(default_factory=InjectionStats)
    #: (stratum, detected-at iteration, restored-to iteration) per recovery.
    events: List[Tuple[int, int, int]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "checkpoints": self.checkpoints,
            "checkpoint_tuples": self.checkpoint_tuples,
            "checkpoint_bytes": self.checkpoint_bytes,
            "checkpoint_seconds": self.checkpoint_seconds,
            "replica_bytes": self.replica_bytes,
            "replica_seconds": self.replica_seconds,
            "failures": self.failures,
            "recoveries": self.recoveries,
            "rolled_back_iterations": self.rolled_back_iterations,
            "recovery_seconds": self.recovery_seconds,
            "injected": self.injected.as_dict(),
        }


@dataclass
class DegradedStats:
    """What elastic degraded-mode recovery did after a permanent loss.

    Populated on :class:`repro.runtime.result.FixpointResult` only when a
    rank was lost for good and the run finished on the shrunken world.
    """

    #: Ranks permanently excluded from the world, in exclusion order.
    excluded_ranks: List[int] = field(default_factory=list)
    #: Placement epoch: bumps once per exclusion (0 = never degraded).
    epoch: int = 0
    #: Shards whose ownership moved off dead ranks onto survivors.
    reowned_shards: int = 0
    #: Tuples / bytes restored from buddy replicas (the dead ranks' state).
    restored_tuples: int = 0
    restored_bytes: int = 0
    #: ``(dead_rank, buddy_rank)`` — which surviving buddy supplied each
    #: dead rank's replica.
    replica_sources: List[Tuple[int, int]] = field(default_factory=list)
    #: Modeled seconds spent in the re-owning collective.
    reown_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "excluded_ranks": list(self.excluded_ranks),
            "epoch": self.epoch,
            "reowned_shards": self.reowned_shards,
            "restored_tuples": self.restored_tuples,
            "restored_bytes": self.restored_bytes,
            "replica_sources": [list(p) for p in self.replica_sources],
            "reown_seconds": self.reown_seconds,
        }
