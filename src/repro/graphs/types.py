"""The :class:`Graph` container shared by generators, loaders and queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class Graph:
    """A directed, optionally weighted graph as an edge array.

    Attributes
    ----------
    edges:
        ``(m, 2)`` int64 array of (src, dst), or ``(m, 3)`` with a weight
        column.  Duplicate edges are allowed in the raw array; engine
        loading dedups them.
    n_nodes:
        Number of vertices (ids are ``0 .. n_nodes-1``).
    name / category:
        Labels for reporting (category mirrors SuiteSparse's taxonomy).
    """

    edges: np.ndarray
    n_nodes: int
    name: str = "graph"
    category: str = "synthetic"

    def __post_init__(self) -> None:
        self.edges = np.asarray(self.edges, dtype=np.int64)
        if self.edges.size == 0:
            self.edges = self.edges.reshape(0, 2)
        if self.edges.ndim != 2 or self.edges.shape[1] not in (2, 3):
            raise ValueError(
                f"edges must be (m, 2) or (m, 3), got {self.edges.shape}"
            )
        if self.edges.size and (
            self.edges[:, :2].min() < 0 or self.edges[:, :2].max() >= self.n_nodes
        ):
            raise ValueError("edge endpoints out of range [0, n_nodes)")

    # ---------------------------------------------------------------- shape

    @property
    def n_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def weighted(self) -> bool:
        return self.edges.shape[1] == 3

    # ------------------------------------------------------------ transforms

    def with_weights(self, rng: np.random.Generator, max_weight: int = 100) -> "Graph":
        """Attach uniform random integer weights in ``[1, max_weight]``."""
        if self.weighted:
            return self
        w = rng.integers(1, max_weight + 1, size=self.n_edges, dtype=np.int64)
        return Graph(
            edges=np.column_stack([self.edges, w]),
            n_nodes=self.n_nodes,
            name=self.name,
            category=self.category,
        )

    def with_unit_weights(self) -> "Graph":
        """Attach weight 1 to every edge (hop-count SSSP)."""
        if self.weighted:
            return self
        w = np.ones(self.n_edges, dtype=np.int64)
        return Graph(
            edges=np.column_stack([self.edges, w]),
            n_nodes=self.n_nodes,
            name=self.name,
            category=self.category,
        )

    def symmetrized(self) -> "Graph":
        """Add the reverse of every edge (weights preserved) and dedup."""
        rev = self.edges.copy()
        rev[:, [0, 1]] = rev[:, [1, 0]]
        both = np.vstack([self.edges, rev])
        both = np.unique(both, axis=0)
        return Graph(
            edges=both,
            n_nodes=self.n_nodes,
            name=self.name,
            category=self.category,
        )

    def deduplicated(self) -> "Graph":
        return Graph(
            edges=np.unique(self.edges, axis=0),
            n_nodes=self.n_nodes,
            name=self.name,
            category=self.category,
        )

    def without_self_loops(self) -> "Graph":
        mask = self.edges[:, 0] != self.edges[:, 1]
        return Graph(
            edges=self.edges[mask],
            n_nodes=self.n_nodes,
            name=self.name,
            category=self.category,
        )

    # ------------------------------------------------------------- analysis

    def out_degrees(self) -> np.ndarray:
        deg = np.zeros(self.n_nodes, dtype=np.int64)
        if self.n_edges:
            np.add.at(deg, self.edges[:, 0], 1)
        return deg

    def max_degree(self) -> int:
        return int(self.out_degrees().max(initial=0))

    def degree_skew(self) -> float:
        """max/mean out-degree — the imbalance driver of paper Fig. 3."""
        deg = self.out_degrees()
        mean = deg.mean() if deg.size else 0.0
        return float(deg.max(initial=0) / mean) if mean > 0 else 0.0

    def tuples(self) -> List[Tuple[int, ...]]:
        """Edge list as Python tuples (engine ``load`` input)."""
        return [tuple(int(x) for x in row) for row in self.edges]

    def __repr__(self) -> str:
        return (
            f"Graph({self.name!r}, n={self.n_nodes}, m={self.n_edges}, "
            f"category={self.category!r})"
        )
