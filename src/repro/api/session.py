"""The :class:`Session` facade: one object for query + incremental update.

A Session owns the engine lifecycle that callers previously wired by
hand (build config → build engine → load facts → run → keep the engine
around for more).  After :meth:`Session.query` converges a program, the
distributed state stays hot inside the session; :meth:`Session.update`
maintains the fixpoint incrementally through
:class:`~repro.runtime.incremental.FixpointHandle` — bit-identical to a
cold recompute on the union EDB, at a fraction of the modeled cost.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Set, Tuple

from repro.api.options import Options, make_options
from repro.runtime.config import EngineConfig
from repro.runtime.engine import Engine
from repro.runtime.incremental import FixpointHandle
from repro.runtime.result import FixpointResult

TupleT = Tuple[int, ...]


class Session:
    """A configured engine front end with incremental maintenance.

    Build one from grouped :class:`~repro.api.Options` (or legacy
    :class:`~repro.runtime.config.EngineConfig` kwargs, which warn once
    per name and keep working)::

        session = Session(Options(n_ranks=8))
        result = session.query(program, {"edge": edges, "start": starts})
        result = session.update({"edge": more_edges})

    ``query`` replaces any previous state (a session runs one program at
    a time); ``update`` requires a prior ``query`` in this session.
    Cross-field option validation happens eagerly at construction, so a
    bad combination fails before any work is done.
    """

    def __init__(self, options: Optional[Options] = None, **legacy: object):
        if isinstance(options, EngineConfig):
            # Accept the flat config object itself as legacy input.
            from repro.api.options import _warn_legacy

            _warn_legacy("<EngineConfig>")
            options = Options.from_engine_config(options)
        self.options = make_options(options, **legacy)
        self._config = self.options.to_engine_config()
        self._engine: Optional[Engine] = None
        self._handle: Optional[FixpointHandle] = None
        self._result: Optional[FixpointResult] = None

    # --------------------------------------------------------------- state

    @property
    def engine(self) -> Optional[Engine]:
        """The live engine of the current query, or None before any."""
        return self._engine

    @property
    def handle(self) -> Optional[FixpointHandle]:
        """The incremental handle, created by the first :meth:`update`."""
        return self._handle

    def result(self) -> FixpointResult:
        """The latest :class:`FixpointResult` (query or update)."""
        if self._result is None:
            raise RuntimeError("no query has run in this session yet")
        return self._result

    def relation(self, name: str) -> Set[TupleT]:
        """A relation's current full contents as a set of tuples."""
        if self._engine is None:
            raise RuntimeError("no query has run in this session yet")
        return self._engine.store[name].as_set()

    # ---------------------------------------------------------------- runs

    def query(
        self,
        program,
        facts: Mapping[str, Iterable[TupleT]],
    ) -> FixpointResult:
        """Converge ``program`` over ``facts``; retain state for updates.

        Each call starts fresh: a new engine is built from this
        session's options, the facts are loaded, and the fixpoint runs
        to convergence.  The converged state stays live in the session
        for subsequent :meth:`update` calls.
        """
        engine = Engine(program, self._config)
        for name, rows in facts.items():
            engine.load(name, rows)
        self._engine = engine
        self._handle = None
        self._result = engine.run()
        return self._result

    def update(
        self, edb_deltas: Mapping[str, Iterable[TupleT]]
    ) -> FixpointResult:
        """Apply an EDB insertion batch to the converged fixpoint.

        Delegates to :class:`~repro.runtime.incremental.FixpointHandle`
        (created on first use): the batch routes through normal
        placement, Δ seeds only on affected ranks, and semi-naïve
        iteration resumes until quiescence.  Raises
        :class:`~repro.runtime.incremental.IncrementalUnsupportedError`
        if the program or batch falls outside insertion-only
        maintenance — never answers wrong.
        """
        if self._engine is None or self._result is None:
            raise RuntimeError(
                "Session.update needs a converged fixpoint; call "
                "Session.query first"
            )
        if self._handle is None:
            self._handle = FixpointHandle(self._engine, self._result)
        self._result = self._handle.update(edb_deltas)
        return self._result
