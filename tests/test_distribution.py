"""Tests for the double-hash bucket / sub-bucket placement."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.aggregators import MinAggregator
from repro.relational.distribution import Distribution
from repro.relational.schema import Schema
from repro.util.hashing import HashSeed

COL = st.integers(min_value=0, max_value=10**6)
ROWS = st.lists(st.tuples(COL, COL, COL), min_size=1, max_size=50)


def dist(n_ranks=32, join_cols=(0,), n_sub=1, n_dep=0, seed=None):
    schema = Schema(
        name="r",
        arity=3,
        join_cols=join_cols,
        n_dep=n_dep,
        aggregator=MinAggregator() if n_dep else None,
        n_subbuckets=n_sub,
    )
    return Distribution(schema, n_ranks, seed)


class TestScalarPlacement:
    def test_bucket_determined_by_join_cols_only(self):
        d = dist(join_cols=(0,))
        assert d.bucket_of((5, 1, 2)) == d.bucket_of((5, 99, 100))

    def test_different_keys_spread(self):
        d = dist(n_ranks=64)
        buckets = {d.bucket_of((k, 0, 0)) for k in range(200)}
        assert len(buckets) > 32  # most ranks touched

    def test_sub_zero_when_disabled(self):
        d = dist(n_sub=1)
        assert d.sub_of((1, 2, 3)) == 0

    def test_sub_zero_when_no_other_cols(self):
        # cc-like schema: all independent columns are join columns
        schema = Schema(name="cc", arity=2, join_cols=(0,), n_dep=1,
                        aggregator=MinAggregator(), n_subbuckets=8)
        d = Distribution(schema, 16)
        assert d.sub_of((3, 7)) == 0

    def test_owner_sub_zero_is_home(self):
        d = dist(n_sub=8)
        for b in range(10):
            assert d.owner(b, 0) == b

    def test_owner_in_range(self):
        d = dist(n_ranks=16, n_sub=8)
        for b in range(16):
            for s in range(8):
                assert 0 <= d.owner(b, s) < 16

    def test_bucket_ranks_covers_all_subs(self):
        d = dist(n_ranks=64, n_sub=4)
        ranks = d.bucket_ranks(5)
        assert len(ranks) == 4
        assert ranks[0] == 5

    def test_rank_pure_function_of_independent_cols(self):
        # Aggregation correctness: the dependent column must not move a
        # tuple (the paper's "excluded from the indexing process").
        d = dist(join_cols=(0,), n_sub=8, n_dep=1)
        assert d.rank_of((3, 7, 100)) == d.rank_of((3, 7, 5))

    def test_seed_changes_placement(self):
        d1 = dist(seed=HashSeed())
        d2 = dist(seed=HashSeed().derive(1))
        placements1 = [d1.bucket_of((k, 0, 0)) for k in range(100)]
        placements2 = [d2.bucket_of((k, 0, 0)) for k in range(100)]
        assert placements1 != placements2

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            dist(n_ranks=0)


class TestVectorizedEquivalence:
    @given(ROWS, st.sampled_from([1, 3, 8]))
    def test_rank_of_rows_matches_scalar(self, rows, n_sub):
        d = dist(n_ranks=17, join_cols=(1,), n_sub=n_sub)
        arr = np.asarray(rows, dtype=np.int64)
        vec = d.rank_of_rows(arr)
        for row, r in zip(rows, vec):
            assert d.rank_of(row) == int(r)

    @given(ROWS)
    def test_bucket_sub_of_rows_matches_scalar(self, rows):
        d = dist(n_ranks=13, join_cols=(0,), n_sub=4)
        arr = np.asarray(rows, dtype=np.int64)
        buckets, subs = d.bucket_sub_of_rows(arr)
        for row, b, s in zip(rows, buckets, subs):
            assert d.bucket_of(row) == int(b)
            assert d.sub_of(row) == int(s)

    @given(ROWS)
    def test_ranks_of_bucket_subs_matches_owner(self, rows):
        d = dist(n_ranks=11, n_sub=5)
        arr = np.asarray(rows, dtype=np.int64)
        buckets, subs = d.bucket_sub_of_rows(arr)
        ranks = d.ranks_of_bucket_subs(buckets, subs)
        for b, s, r in zip(buckets, subs, ranks):
            assert d.owner(int(b), int(s)) == int(r)

    def test_owners_of_buckets_matches_scalar(self):
        d = dist(n_ranks=29, n_sub=6)
        buckets = np.arange(29, dtype=np.int64)
        for s in range(6):
            vec = d.owners_of_buckets(buckets, s)
            for b, r in zip(buckets, vec):
                assert d.owner(int(b), s) == int(r)

    def test_empty_rows(self):
        d = dist()
        assert d.rank_of_rows(np.zeros((0, 3), dtype=np.int64)).size == 0

    def test_buckets_of_key_rows_matches_probe_semantics(self):
        """The send side's hash over probe columns must equal the bucket
        the inner relation's own tuples were placed by."""
        shared_seed = HashSeed()
        # inner: edge(m, t, w) keyed on column 0
        inner = dist(n_ranks=32, join_cols=(0,), seed=shared_seed)
        # outer tuples: spath(f, m, l); probe col = 1 (m)
        outer_rows = np.array([(9, 5, 1), (8, 5, 2), (7, 6, 3)], dtype=np.int64)
        got = inner.buckets_of_key_rows(outer_rows, (1,))
        assert got[0] == got[1] == inner.bucket_of((5, 0, 0))
        assert got[2] == inner.bucket_of((6, 0, 0))


class TestBalancing:
    def test_subbuckets_spread_hot_key(self):
        """A star graph's hub edges concentrate on one rank without
        sub-bucketing and spread across ~n_sub ranks with it."""
        hub_tuples = [(0, leaf, 1) for leaf in range(1, 2000)]
        arr = np.asarray(hub_tuples, dtype=np.int64)

        d1 = dist(n_ranks=64, n_sub=1)
        ranks1 = set(d1.rank_of_rows(arr).tolist())
        assert len(ranks1) == 1

        d8 = dist(n_ranks=64, n_sub=8)
        ranks8 = set(d8.rank_of_rows(arr).tolist())
        assert 4 <= len(ranks8) <= 8

    def test_partition_groups_by_rank(self):
        d = dist(n_ranks=4)
        groups = d.partition([(i, 0, 0) for i in range(100)])
        assert sum(len(v) for v in groups.values()) == 100
        for rank, tuples in groups.items():
            for t in tuples:
                assert d.rank_of(t) == rank
