"""Named counters, gauges, and histograms.

The registry turns quantities the runtime used to collapse immediately
(per-rank compute → ``max``, Δ sizes → a single total) into retained
distributions, which is what the skew literature says you need: both
Beame/Koutris/Suciu ("Skew in Parallel Query Processing") and the paper's
own Fig. 3 CDFs require *per-worker* data, not aggregates.

Instruments are created on first use and identified by name; slashes are
conventional namespacing (``comm_bytes/alltoallv``).  A null registry with
the same interface backs the no-op tracer so instrumented code never
branches on "is tracing on?".
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A retained distribution of observations.

    Keeps raw values (traces are bounded by iteration counts, not traffic
    volume) so exact quantiles and CDFs are available at export time.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def observe_many(self, values: Iterable[float]) -> None:
        self.values.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile by nearest-rank; ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> Dict[str, float]:
        if not self.values:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": min(self.values),
            "max": max(self.values),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create home for every named instrument of one run."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ----------------------------------------------------------- instruments

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    # ---------------------------------------------------------------- export

    def as_dict(self) -> Dict[str, Any]:
        """Nested plain-data view (JSON-serializable)."""
        return {
            "counters": {n: c.value for n, c in self.counters.items()},
            "gauges": {n: g.value for n, g in self.gauges.items()},
            "histograms": {n: h.summary() for n, h in self.histograms.items()},
        }

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)


class _NullInstrument:
    """Shared sink for disabled instrumentation; accepts every write."""

    __slots__ = ()
    name = "<null>"
    value = 0
    values: List[float] = []
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """No-op registry: every instrument is a shared write-discarding sink."""

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def as_dict(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Shared no-op registry (backs :data:`repro.obs.tracer.NULL_TRACER`).
NULL_METRICS = NullMetricsRegistry()
