#!/usr/bin/env python3
"""PageRank and longest-shortest-path — the remaining §I workloads.

* PageRank runs as iterated stratified ``SUM`` aggregation in fixed-point
  arithmetic (the standard recursive-aggregate-engine formulation); the
  result is validated against textbook power iteration.
* Lsp (paper §III-A) layers a stratified ``$MAX`` over the recursive
  ``$MIN`` SSSP — the example the paper uses to explain why transient
  partial results must not leak across strata.

Run:  python examples/pagerank_and_lsp.py
"""

import numpy as np

from repro.graphs import rmat
from repro.graphs.reference import dijkstra, pagerank as reference_pagerank
from repro.queries import run_lsp, run_pagerank
from repro.runtime.config import EngineConfig

graph = rmat(8, 6, seed=11, name="demo_social")
config = EngineConfig(n_ranks=16)

# --------------------------------------------------------------- PageRank
ranks = run_pagerank(graph, iterations=15, config=config)
reference = reference_pagerank(graph, iterations=15)
error = float(np.abs(ranks - reference).max())
top = np.argsort(ranks)[::-1][:5]
print("PageRank top-5 vertices (engine vs reference):")
for v in top:
    print(f"  vertex {v:4d}: {ranks[v]:.6f}  (reference {reference[v]:.6f})")
print(f"max absolute error vs power iteration: {error:.2e}")
assert error < 1e-3

# -------------------------------------------------------------------- Lsp
weighted = graph.with_weights(np.random.default_rng(5), max_weight=20)
sources = [0, 1, 2]
value, result = run_lsp(weighted, sources, config)

expected = max(
    max(dijkstra(weighted, s).values()) for s in sources
)
print(f"\nlongest shortest path from {sources}: {value} (reference {expected})")
print(
    "spnorm was computed in a stratum *after* the SSSP fixpoint, so no "
    "transient path length ever crossed the network:"
)
print(f"  |spath|  = {result.relations['spath'].full_size()} final accumulators")
print(f"  |spnorm| = {result.relations['spnorm'].full_size()} copies (equal)")
assert value == expected
assert result.relations["spath"].full_size() == result.relations["spnorm"].full_size()
