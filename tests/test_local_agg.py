"""Tests for fused dedup + local aggregation (the paper's §III-A core)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.aggregators import MaxAggregator, MinAggregator, SumAggregator
from repro.core.local_agg import (
    AbsorbStats,
    AggregateShard,
    PlainShard,
    make_shard,
)
from repro.relational.schema import Schema


def plain_schema():
    return Schema(name="p", arity=2, join_cols=(0,))


def min_schema():
    # spath-like: (from, to, dist); keyed on column 1
    return Schema(name="spath", arity=3, join_cols=(1,), n_dep=1,
                  aggregator=MinAggregator())


class TestPlainShard:
    def test_absorb_dedups(self):
        s = PlainShard(plain_schema())
        stats = AbsorbStats()
        assert s.absorb([(1, 2), (1, 2), (1, 3)], stats) == 2
        assert stats.received == 3
        assert stats.admitted == 2
        assert stats.suppressed == 1
        assert s.full_size() == 2

    def test_delta_lifecycle(self):
        s = PlainShard(plain_schema())
        s.absorb([(1, 2)])
        assert s.delta_size() == 0  # not yet advanced
        assert s.advance() == 1
        assert set(s.iter_delta()) == {(1, 2)}
        s.absorb([(1, 2), (5, 6)])  # (1,2) suppressed
        assert s.advance() == 1
        assert set(s.iter_delta()) == {(5, 6)}

    def test_probe_full(self):
        s = PlainShard(plain_schema())
        s.absorb([(1, 2), (1, 3), (4, 5)])
        assert sorted(s.probe_full((1,))) == [(1, 2), (1, 3)]
        assert list(s.probe_full((9,))) == []
        assert s.count_full((1,)) == 2

    def test_probe_delta(self):
        s = PlainShard(plain_schema())
        s.absorb([(1, 2)])
        s.advance()
        assert list(s.probe_delta((1,))) == [(1, 2)]

    def test_collect(self):
        s = PlainShard(plain_schema())
        out = []
        s.absorb([(1, 2), (1, 2), (3, 4)], collect=out)
        assert sorted(out) == [(1, 2), (3, 4)]

    def test_seed_delta_from_full(self):
        s = PlainShard(plain_schema())
        s.absorb([(1, 2), (3, 4)])
        s.seed_delta_from_full()
        assert set(s.iter_delta()) == {(1, 2), (3, 4)}


class TestAggregateShard:
    def test_requires_aggregator(self):
        with pytest.raises(ValueError):
            AggregateShard(plain_schema())

    def test_first_tuple_admitted(self):
        s = AggregateShard(min_schema())
        assert s.absorb([(0, 1, 10)]) == 1
        assert s.full_size() == 1

    def test_improvement_updates_accumulator(self):
        s = AggregateShard(min_schema())
        s.absorb([(0, 1, 10)])
        assert s.absorb([(0, 1, 7)]) == 1
        assert set(s.iter_full()) == {(0, 1, 7)}
        assert s.full_size() == 1  # still one group

    def test_non_improvement_suppressed(self):
        """Paper Fig. 1: (1,4,5) arriving over stored (1,4,2) does nothing."""
        s = AggregateShard(min_schema())
        s.absorb([(1, 4, 2)])
        s.advance()
        stats = AbsorbStats()
        assert s.absorb([(1, 4, 5)], stats) == 0
        assert stats.suppressed == 1
        assert s.advance() == 0  # nothing enters delta
        assert set(s.iter_full()) == {(1, 4, 2)}

    def test_delta_carries_improved_value(self):
        s = AggregateShard(min_schema())
        s.absorb([(0, 1, 10), (0, 1, 4)])  # both in one batch
        s.advance()
        assert set(s.iter_delta()) == {(0, 1, 4)}

    def test_groups_with_same_join_key_independent(self):
        s = AggregateShard(min_schema())
        # same join col (to=5), different from -> distinct groups
        s.absorb([(1, 5, 10), (2, 5, 20)])
        assert s.full_size() == 2
        assert sorted(s.probe_full((5,))) == [(1, 5, 10), (2, 5, 20)]

    def test_collect_materializes_merged_tuple(self):
        s = AggregateShard(min_schema())
        out = []
        s.absorb([(0, 1, 10)], collect=out)
        s.absorb([(0, 1, 3)], collect=out)
        assert out == [(0, 1, 10), (0, 1, 3)]

    def test_lookup(self):
        s = AggregateShard(min_schema())
        s.absorb([(0, 1, 10)])
        assert s.lookup((0, 1)) == (10,)
        assert s.lookup((9, 9)) is None

    def test_max_aggregation(self):
        schema = Schema(name="m", arity=2, join_cols=(0,), n_dep=1,
                        aggregator=MaxAggregator())
        s = AggregateShard(schema)
        s.absorb([(1, 5), (1, 9), (1, 2)])
        assert set(s.iter_full()) == {(1, 9)}

    def test_fold_sum_always_admits(self):
        schema = Schema(name="s", arity=2, join_cols=(0,), n_dep=1,
                        aggregator=SumAggregator())
        s = AggregateShard(schema)
        assert s.absorb([(1, 5), (1, 7)]) == 2
        assert set(s.iter_full()) == {(1, 12)}

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),
                st.integers(0, 3),
                st.integers(0, 100),
            ),
            min_size=1,
            max_size=60,
        ),
        st.randoms(),
    )
    def test_order_insensitive_final_state(self, tuples, rnd):
        """Property: absorb order never changes the final accumulators —
        the invariant that makes unordered network delivery safe."""
        a = AggregateShard(min_schema())
        a.absorb(tuples)
        shuffled = list(tuples)
        rnd.shuffle(shuffled)
        b = AggregateShard(min_schema())
        for t in shuffled:
            b.absorb([t])  # one at a time, different batching
        assert set(a.iter_full()) == set(b.iter_full())

    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 50)),
            min_size=1,
            max_size=40,
        )
    )
    def test_accumulator_is_group_min(self, tuples):
        s = AggregateShard(min_schema())
        s.absorb(tuples)
        expected = {}
        for f, t, d in tuples:
            expected[(f, t)] = min(expected.get((f, t), d), d)
        got = {(f, t): d for f, t, d in s.iter_full()}
        assert got == expected

    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 50)),
            min_size=1,
            max_size=30,
        )
    )
    def test_reabsorb_is_noop(self, tuples):
        """Dedup fusion: re-delivering everything changes nothing."""
        s = AggregateShard(min_schema())
        s.absorb(tuples)
        s.advance()
        state = set(s.iter_full())
        stats = AbsorbStats()
        s.absorb(list(state), stats)
        assert stats.admitted == 0
        assert set(s.iter_full()) == state


class TestMakeShard:
    def test_plain(self):
        assert isinstance(make_shard(plain_schema()), PlainShard)

    def test_aggregate(self):
        assert isinstance(make_shard(min_schema()), AggregateShard)

    def test_btree_backend(self):
        s = make_shard(min_schema(), use_btree=True)
        s.absorb([(0, 5, 1), (0, 3, 2), (0, 4, 3)])
        # B-tree outer index iterates join keys in sorted order
        assert [t[1] for t in s.iter_full()] == [3, 4, 5]
