"""Measurement and reporting utilities.

Re-exports the imbalance instrumentation (:mod:`repro.core.balancer`) and
table renderers (:mod:`repro.experiments.common`), and adds terminal
plotting for scaling curves and distribution CDFs so the CLI can show the
paper's figures without matplotlib.
"""

from repro.core.balancer import ImbalanceReport, measure_imbalance
from repro.experiments.common import format_mmss, format_si, render_series, render_table
from repro.metrics.asciiplot import ascii_cdf, ascii_plot
from repro.metrics.obsreport import render_rank_utilization, render_span_summary

__all__ = [
    "ImbalanceReport",
    "measure_imbalance",
    "format_mmss",
    "format_si",
    "render_series",
    "render_table",
    "ascii_plot",
    "ascii_cdf",
    "render_rank_utilization",
    "render_span_summary",
]
