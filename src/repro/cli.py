"""``paralagg`` command-line interface.

Runs queries and regenerates the paper's tables/figures from the shell::

    paralagg datasets
    paralagg run sssp --dataset twitter_like --ranks 64 --sources 0,1,2
    paralagg run cc --dataset flickr --ranks 256 --subbuckets 8
    paralagg experiment fig3
    paralagg experiment table2 --full

Every experiment prints the same rows/series the paper reports (see
EXPERIMENTS.md for the side-by-side).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.comm.wire import WIRE_CODECS, WIRE_COLLECTIVES, WireConfig
from repro.experiments import ablations, fig2, fig3, fig4, fig5, fig6, fig7, table1, table2
from repro.experiments.common import ExperimentDefaults, defaults_from_env
from repro.graphs.datasets import DATASETS, load_dataset
from repro.obs.tracer import Tracer
from repro.queries.cc import run_cc
from repro.queries.sssp import run_sssp
from repro.runtime.config import EngineConfig


def _add_wire_flags(parser: argparse.ArgumentParser) -> None:
    """Wire-layer flags shared by ``run``, ``query`` and ``bench``."""
    parser.add_argument(
        "--no-wire", action="store_true",
        help="disable the wire-optimization layer entirely (legacy route "
             "framing; results are identical, only modeled bytes/seconds "
             "change)",
    )
    parser.add_argument(
        "--no-sender-combine", action="store_true",
        help="keep the wire layer but skip sender-side duplicate folding "
             "before the route exchange",
    )
    parser.add_argument(
        "--wire-codec", choices=list(WIRE_CODECS), default="delta",
        help="route payload encoding: raw 8-byte words, sorted-key "
             "delta+varint, or dictionary (default: delta)",
    )
    parser.add_argument(
        "--alltoallv", choices=list(WIRE_COLLECTIVES), default="auto",
        help="modeled alltoallv algorithm: pairwise 'direct', log-round "
             "'bruck', or per-superstep 'auto' from the α–β model "
             "(default: auto)",
    )


def _wire_config(args: argparse.Namespace) -> WireConfig:
    if args.no_wire:
        return WireConfig.off()
    return WireConfig(
        enabled=True,
        sender_combine=not args.no_sender_combine,
        codec=args.wire_codec,
        alltoallv=args.alltoallv,
    )


def _add_rebalance_flags(parser: argparse.ArgumentParser) -> None:
    """Online-rebalancing flags shared by ``run`` and ``query``."""
    parser.add_argument(
        "--rebalance", action="store_true",
        help="enable online adaptive spatial rebalancing: grow a skewed "
             "relation's sub-bucket count mid-fixpoint via an intra-bucket "
             "redistribution exchange (results are bit-identical to the "
             "static run; only placement and modeled time change)",
    )
    parser.add_argument(
        "--rebalance-every", type=int, default=4, metavar="K",
        help="check the skew trigger every K iterations of a recursive "
             "stratum (default: 4)",
    )
    parser.add_argument(
        "--rebalance-threshold", type=float, default=0.25, metavar="SHARE",
        help="top-bucket share of a relation's tuples that arms the "
             "trigger, in [0, 1] (default: 0.25)",
    )
    parser.add_argument(
        "--rebalance-factor", type=float, default=2.0, metavar="F",
        help="modeled-overload gate: rebalance only while top_share x "
             "n_ranks / n_subbuckets >= F, so growth self-extinguishes "
             "once the fan-out catches up with the skew (default: 2.0)",
    )


def _options_from_args(args: argparse.Namespace, *, tracer=None):
    """Lift a CLI flag namespace into grouped :class:`repro.api.Options`.

    Flags a subcommand doesn't define fall back to the Options defaults,
    so ``run``, ``query`` and ``update`` all share one lifting path and
    one set of cross-field rules (crash vs --checkpoint-every,
    crash_perm vs --replicas, rebalance factor) — the same
    ``Options.validate`` the library runs.
    """
    from repro.api import (
        DiagnosticsOptions,
        FaultOptions,
        Options,
        RebalanceOptions,
        RecoveryOptions,
        WireOptions,
    )

    core = {}
    if hasattr(args, "subbuckets"):
        core["subbuckets"] = {"edge": args.subbuckets}
    if hasattr(args, "seed"):
        core["seed"] = args.seed
    return Options(
        n_ranks=args.ranks,
        dynamic_join=not getattr(args, "no_dynamic_join", False),
        **core,
        wire=WireOptions.from_config(_wire_config(args)),
        faults=FaultOptions(spec=getattr(args, "faults", None) or None),
        recovery=RecoveryOptions(
            checkpoint_every=getattr(args, "checkpoint_every", None),
            replicas=getattr(args, "replicas", 0),
        ),
        rebalance=RebalanceOptions(
            enabled=args.rebalance,
            every=args.rebalance_every,
            threshold=args.rebalance_threshold,
            factor=args.rebalance_factor,
        ),
        diagnostics=DiagnosticsOptions(
            enabled=_want_diagnostics(args), tracer=tracer
        ),
    )


def _engine_config(args: argparse.Namespace, *, tracer=None) -> EngineConfig:
    """Validated EngineConfig from CLI flags (SystemExit on bad combos)."""
    from repro.api import OptionsError

    options = _options_from_args(args, tracer=tracer)
    try:
        return options.to_engine_config()
    except OptionsError as exc:
        raise SystemExit(str(exc))
    except ValueError as exc:
        raise SystemExit(f"bad --faults spec: {exc}")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by the ``run`` and ``query`` commands."""
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a span trace of the run and write it to PATH "
             "(phases, iterations, per-rank compute/comm lanes)",
    )
    parser.add_argument(
        "--trace-format", choices=["chrome", "jsonl"], default="chrome",
        help="trace file format: 'chrome' = Chrome trace-event JSON "
             "(open in chrome://tracing or https://ui.perfetto.dev, one "
             "lane per rank), 'jsonl' = one JSON record per line for "
             "jq/pandas (default: chrome)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print a machine-readable JSON report (phase breakdown, "
             "counters, metrics) instead of the human-readable text",
    )
    parser.add_argument(
        "--diagnostics", action="store_true",
        help="run the performance-diagnostics plane: capture rank×rank "
             "communication matrices, attribute the modeled critical path, "
             "and run the skew doctor (observation only — results and "
             "modeled costs are unchanged)",
    )
    parser.add_argument(
        "--flamegraph", metavar="PATH", default=None,
        help="write the modeled critical path as collapsed stacks to PATH "
             "(feed to flamegraph.pl or speedscope); implies --diagnostics",
    )


def _finish_obs(args: argparse.Namespace, fp, report: dict) -> int:
    """Shared tail of a traced/JSON run: write the trace, emit the report."""
    if args.trace:
        try:
            n = fp.write_trace(
                args.trace, args.trace_format,
                meta={"command": " ".join(sys.argv[1:])},
            )
        except OSError as exc:
            raise SystemExit(f"cannot write trace to {args.trace}: {exc}")
        report["trace"] = {
            "path": args.trace, "format": args.trace_format, "records": n,
        }
    diagnostics = None
    if args.diagnostics or args.flamegraph:
        diagnostics = fp.diagnose()
        report["diagnostics"] = diagnostics.to_dict()
    if args.flamegraph:
        from repro.obs.analysis import write_flamegraph

        try:
            n_stacks = write_flamegraph(args.flamegraph, fp.spans)
        except OSError as exc:
            raise SystemExit(f"cannot write flamegraph to {args.flamegraph}: {exc}")
        report["flamegraph"] = {"path": args.flamegraph, "stacks": n_stacks}
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
        return 0
    if args.trace:
        from repro.metrics.obsreport import render_rank_utilization, render_span_summary

        print(f"trace: {report['trace']['records']} records -> {args.trace} "
              f"[{args.trace_format}]")
        if args.trace_format == "chrome":
            print("  open in https://ui.perfetto.dev (one lane per rank)")
        print(render_span_summary(fp.spans))
        print(render_rank_utilization(fp.spans))
    if diagnostics is not None:
        from repro.obs.analysis import render_comm_heatmap, render_compute_heatmap

        print(diagnostics.render())
        print(render_compute_heatmap(fp.spans))
        if fp.comm_profile is not None and len(fp.comm_profile):
            print(render_comm_heatmap(fp.comm_profile))
    if args.flamegraph:
        print(f"flamegraph: {report['flamegraph']['stacks']} stacks -> "
              f"{args.flamegraph}")
    return 0


def _base_report(fp, *, ranks: int) -> dict:
    comm = fp.ledger.comm
    report = {
        "ranks": ranks,
        "iterations": fp.iterations,
        "modeled_seconds": fp.modeled_seconds(),
        "wall_seconds": fp.wall_seconds(),
        "phase_seconds": fp.phase_breakdown(),
        "imbalance_ratio": fp.ledger.imbalance_ratio(),
        "counters": dict(fp.counters),
        "comm": {
            "bytes": comm.bytes_total,
            "messages": comm.messages,
            "bytes_by_kind": dict(comm.by_kind),
        },
    }
    if fp.metrics:
        report["metrics"] = fp.metrics_dict()
    if fp.rebalance is not None:
        report["rebalance"] = fp.rebalance
    return report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="paralagg",
        description="PARALAGG reproduction: communication-avoiding recursive aggregation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the named stand-in graphs")

    run = sub.add_parser("run", help="run a query on a dataset")
    run.add_argument("query", choices=["sssp", "cc"])
    run.add_argument("--dataset", default="twitter_like")
    run.add_argument("--ranks", type=int, default=64)
    run.add_argument("--subbuckets", type=int, default=8,
                     help="spatial load-balancing factor for the edge relation")
    run.add_argument("--sources", default="0",
                     help="comma-separated SSSP source vertices")
    run.add_argument("--scale-shift", type=int, default=0,
                     help="halve the graph's linear scale this many times")
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--no-dynamic-join", action="store_true",
                     help="disable Algorithm 1's per-iteration vote")
    run.add_argument("--explain", action="store_true",
                     help="print the compiled evaluation plan before running")
    run.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject faults under the comm substrate, e.g. "
             "'crash=1@12,drop=0.02,dup=0.01,corrupt=0.01,"
             "straggle=2:3.0,seed=7' (see repro.faults.parse_fault_spec); "
             "results must match the fault-free run bit-for-bit",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="K",
        help="checkpoint each recursive stratum every K iterations "
             "(required to survive an injected rank crash)",
    )
    run.add_argument(
        "--replicas", type=int, default=0, metavar="N",
        help="mirror each rank's checkpoint to N buddy ranks (required "
             ">= 1 to survive a permanent loss, crash_perm=R@S; the dead "
             "rank's state is restored from a buddy and its buckets "
             "re-owned onto the survivors)",
    )
    _add_obs_flags(run)
    _add_wire_flags(run)
    _add_rebalance_flags(run)

    update = sub.add_parser(
        "update",
        help="demonstrate incremental fixpoint maintenance: converge on "
             "most of a dataset, apply the held-out edges as update "
             "batches through the Session API, and verify bit-identity "
             "against a cold recompute on the union EDB",
    )
    update.add_argument("query", choices=["sssp", "cc"])
    update.add_argument("--dataset", default="twitter_like")
    update.add_argument("--ranks", type=int, default=64)
    update.add_argument("--subbuckets", type=int, default=8,
                        help="spatial load-balancing factor for the edge "
                             "relation")
    update.add_argument("--sources", default="0",
                        help="comma-separated SSSP source vertices")
    update.add_argument("--scale-shift", type=int, default=0,
                        help="halve the graph's linear scale this many times")
    update.add_argument("--seed", type=int, default=42)
    update.add_argument("--batch-frac", type=float, default=0.01,
                        metavar="FRAC",
                        help="fraction of edges held out and replayed as "
                             "updates (default: 0.01)")
    update.add_argument("--batches", type=int, default=1, metavar="N",
                        help="split the held-out edges into N sequential "
                             "update batches (default: 1)")
    update.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject faults under the comm substrate during convergence "
             "AND the updates (see repro.faults.parse_fault_spec); the "
             "maintained fixpoint must still match the fault-free cold "
             "recompute bit-for-bit",
    )
    update.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="K",
        help="checkpoint each recursive stratum every K iterations "
             "(required to survive an injected rank crash)",
    )
    update.add_argument(
        "--replicas", type=int, default=0, metavar="N",
        help="mirror each rank's checkpoint to N buddy ranks",
    )
    _add_obs_flags(update)
    _add_wire_flags(update)
    _add_rebalance_flags(update)

    query = sub.add_parser(
        "query", help="run a Datalog source file (surface syntax)"
    )
    query.add_argument("file", help="path to a .dl program")
    query.add_argument("--ranks", type=int, default=16)
    query.add_argument(
        "--facts", action="append", default=[], metavar="REL=PATH",
        help="load a relation from an edge-list file (repeatable)",
    )
    query.add_argument("--explain", action="store_true")
    query.add_argument("--spmd", action="store_true",
                       help="evaluate with the literal per-rank SPMD engine "
                            "instead of the fast BSP driver")
    query.add_argument("--limit", type=int, default=20,
                       help="max tuples to print per output relation")
    _add_obs_flags(query)
    _add_wire_flags(query)
    _add_rebalance_flags(query)

    bench = sub.add_parser(
        "bench",
        help="benchmark the scalar vs columnar executors on the fixpoint "
             "hot path and verify they agree bit-for-bit",
    )
    bench.add_argument("--dataset", default="twitter_like")
    bench.add_argument("--ranks", type=int, default=64)
    bench.add_argument("--scale-shift", type=int, default=0,
                       help="halve the graph's linear scale this many times")
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument("--subbuckets", type=int, default=8)
    bench.add_argument("--sources", default="0,1,2",
                       help="comma-separated SSSP source vertices")
    bench.add_argument("--queries", default="sssp,cc",
                       help="comma-separated subset of sssp,cc")
    bench.add_argument("--wire", action="store_true",
                       help="benchmark the wire-optimization layer instead "
                            "(modeled bytes and time, wire on vs off; "
                            "default output BENCH_PR7.json)")
    bench.add_argument("--rebalance", action="store_true",
                       help="benchmark online adaptive rebalancing instead: "
                            "a deliberately under-bucketed skewed run, "
                            "static vs statically-tuned vs adaptive "
                            "(default output BENCH_PR8.json)")
    bench.add_argument("--recovery", action="store_true",
                       help="benchmark degraded-mode recovery instead: "
                            "replication overhead (replicas sweep) and the "
                            "modeled cost of surviving a permanent rank "
                            "loss, with a hard identity check against the "
                            "fault-free run (default output BENCH_PR9.json)")
    bench.add_argument("--incremental", action="store_true",
                       help="benchmark incremental fixpoint maintenance "
                            "instead: hold out a small edge batch, converge, "
                            "apply it via FixpointHandle.update, and verify "
                            "bit-identity (answers + full multisets) against "
                            "a cold recompute on the union EDB, plus a chaos "
                            "variant with drop/dup and a crash probed into "
                            "the update window (default output "
                            "BENCH_PR10.json)")
    bench.add_argument("--batch-frac", type=float, default=0.01,
                       metavar="FRAC",
                       help="with --incremental: fraction of edges held out "
                            "as the update batch (default: 0.01)")
    bench.add_argument("--output", default=None, metavar="PATH",
                       help="write the JSON report here ('-' to skip; "
                            "default BENCH_PR2.json, BENCH_PR7.json with "
                            "--wire, BENCH_PR8.json with --rebalance, "
                            "BENCH_PR9.json with --recovery, "
                            "BENCH_PR10.json with --incremental, or "
                            "'-' with --compare)")
    bench.add_argument("--json", action="store_true",
                       help="print the JSON report instead of the table")
    bench.add_argument(
        "--compare", metavar="BASELINE.json", default=None,
        help="compare this run against a committed bench snapshot and exit "
             "non-zero on regression (modeled-time drift beyond the "
             "tolerance, or an iteration-count change)",
    )
    bench.add_argument(
        "--tolerance", type=float, default=5.0, metavar="PCT",
        help="allowed modeled-seconds drift vs the baseline, in percent "
             "(default: 5.0); host wall-time drift is advisory only",
    )
    _add_wire_flags(bench)

    tr = sub.add_parser(
        "trace-report",
        help="analyze a saved trace offline: validate it, then run the "
             "span summary, rank utilization, and performance diagnostics "
             "without re-running the query",
    )
    tr.add_argument("trace_file", help="a chrome/jsonl trace written by --trace")
    tr.add_argument("--format", choices=["chrome", "jsonl"], default=None,
                    help="trace format (default: sniff from the file)")
    tr.add_argument("--json", action="store_true",
                    help="print the full report as JSON")
    tr.add_argument("--flamegraph", metavar="PATH", default=None,
                    help="also write the critical path as collapsed stacks")

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument(
        "name",
        choices=["fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                 "table1", "table2", "ablations", "recovery", "all"],
    )
    exp.add_argument("--full", action="store_true",
                     help="run the paper's full sweep (slow)")
    exp.add_argument("--scale-shift", type=int, default=None)
    return parser


def _cmd_datasets() -> int:
    for name, spec in sorted(DATASETS.items()):
        print(f"{name:14s} stands in for {spec.paper_graph:28s} [{spec.category}]")
    return 0


def _want_diagnostics(args: argparse.Namespace) -> bool:
    return bool(args.diagnostics or args.flamegraph)


def _cmd_run(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, seed=args.seed, scale_shift=args.scale_shift)
    # Diagnostics need the span stream, so they imply a live tracer.
    tracer = Tracer() if args.trace or _want_diagnostics(args) else None
    # All cross-field validation (crash vs --checkpoint-every, crash_perm
    # vs --replicas, rebalance factor) lives in api.Options.validate().
    config = _engine_config(args, tracer=tracer)
    quiet = args.json
    if not quiet:
        print(f"{graph} on {args.ranks} simulated ranks")
    if args.explain:
        from repro.queries.cc import cc_program
        from repro.queries.sssp import sssp_program
        from repro.runtime.engine import Engine as _E

        prog = (
            sssp_program(args.subbuckets)
            if args.query == "sssp"
            else cc_program(args.subbuckets)
        )
        print(_E(prog, config).explain())
    t0 = time.time()
    summary: dict = {"query": args.query, "dataset": args.dataset}
    if args.query == "sssp":
        sources = [int(s) for s in args.sources.split(",") if s]
        result = run_sssp(graph, sources, config)
        fp = result.fixpoint
        summary.update(n_paths=result.n_paths, sources=sources)
        if not quiet:
            print(
                f"sssp: {result.n_paths} shortest paths from {len(sources)} "
                f"source(s) in {result.iterations} iterations"
            )
    else:
        result = run_cc(graph, config)
        fp = result.fixpoint
        summary.update(
            n_components=result.n_components, n_vertices=len(result.labels)
        )
        if not quiet:
            print(
                f"cc: {result.n_components} components over "
                f"{len(result.labels)} non-isolated vertices in "
                f"{result.iterations} iterations"
            )
    if not quiet:
        print(f"wall (simulation host): {time.time() - t0:.2f}s")
        print(f"modeled cluster time:   {fp.modeled_seconds():.6f}s")
        for phase, seconds in sorted(fp.phase_breakdown().items()):
            print(f"  {phase:14s} {seconds:.6f}s")
        comm = fp.ledger.comm
        print(f"communication: {comm.bytes_total} bytes in {comm.messages} messages")
        if fp.recovery is not None:
            rec, inj = fp.recovery, fp.recovery.injected
            print(
                f"faults: {inj.drops} dropped / {inj.dups} duplicated / "
                f"{inj.corruptions} corrupted ({inj.detected_corruptions} "
                f"detected) / {inj.crashes} crash(es); "
                f"{inj.retransmits} retransmit(s)"
            )
            print(
                f"recovery: {rec.checkpoints} checkpoint(s) "
                f"({rec.checkpoint_bytes} bytes, "
                f"{rec.checkpoint_seconds:.6f}s modeled), "
                f"{rec.recoveries} recovery(ies), "
                f"{rec.rolled_back_iterations} iteration(s) replayed"
            )
            if rec.replica_bytes:
                print(
                    f"replication: {rec.replica_bytes} bytes mirrored to "
                    f"buddies ({rec.replica_seconds:.6f}s modeled)"
                )
        if fp.degraded is not None:
            deg = fp.degraded
            sources = ", ".join(
                f"rank {d} from buddy {b}" for d, b in deg.replica_sources
            )
            print(
                f"degraded: finished without rank(s) "
                f"{deg.excluded_ranks} (epoch {deg.epoch}); restored "
                f"{deg.restored_tuples} tuple(s) ({sources}), re-owned "
                f"{deg.reowned_shards} shard(s) onto survivors"
            )
    if not quiet and fp.rebalance:
        for e in fp.rebalance:
            print(
                f"rebalance: {e['relation']} {e['old_subbuckets']}->"
                f"{e['new_subbuckets']} sub-buckets at iteration "
                f"{e['iteration']} ({e['policy']}; top bucket "
                f"{e['top_share']:.0%}, {e['moved_tuples']} tuple(s) moved)"
            )
    report = _base_report(fp, ranks=args.ranks)
    if fp.recovery is not None:
        report["recovery"] = fp.recovery.as_dict()
    if fp.degraded is not None:
        report["degraded"] = fp.degraded.as_dict()
    report.update(summary)
    return _finish_obs(args, fp, report)


def _cmd_update(args: argparse.Namespace) -> int:
    """Converge on a base EDB, replay held-out edges as update batches."""
    from repro.api import OptionsError, Session
    from repro.experiments.incremental import (
        _cold_run,
        _program_and_facts,
        _split_edges,
    )
    from repro.runtime.incremental import IncrementalUnsupportedError

    graph = load_dataset(args.dataset, seed=args.seed, scale_shift=args.scale_shift)
    tracer = Tracer() if args.trace or _want_diagnostics(args) else None
    options = _options_from_args(args, tracer=tracer)
    try:
        session = Session(options)
    except OptionsError as exc:
        raise SystemExit(str(exc))
    except ValueError as exc:
        raise SystemExit(f"bad --faults spec: {exc}")
    sources = [int(s) for s in args.sources.split(",") if s]
    program, edges, other_facts, answer_rel = _program_and_facts(
        args.query, graph, sources, args.subbuckets
    )
    base, held = _split_edges(edges, args.batch_frac, args.seed)
    n_batches = max(1, args.batches)
    batches = [held[i::n_batches] for i in range(n_batches)]
    batches = [b for b in batches if b]

    quiet = args.json
    if not quiet:
        print(
            f"{graph} on {args.ranks} simulated ranks — converging on "
            f"{len(base)} edges, holding out {len(held)} "
            f"({args.batch_frac:.1%}) across {len(batches)} batch(es)"
        )
    t0 = time.time()
    session.query(program, {"edge": base, **other_facts})
    base_modeled = session.result().modeled_seconds()
    prev = base_modeled
    update_costs = []
    for i, batch in enumerate(batches):
        try:
            session.update({"edge": batch})
        except IncrementalUnsupportedError as exc:
            raise SystemExit(
                f"update batch {i} is outside insertion-only maintenance; "
                f"a cold recompute on the union EDB is required: {exc}"
            )
        total = session.result().modeled_seconds()
        update_costs.append(total - prev)
        prev = total
        if not quiet:
            print(
                f"update {i}: {len(batch)} tuple(s), modeled "
                f"{update_costs[-1]:.6f}s"
            )

    # The oracle: a fault-free cold recompute on the union EDB.
    cold_options = _options_from_args(args, tracer=None)
    cold_options.faults = type(cold_options.faults)()
    cold_options.recovery = type(cold_options.recovery)()
    cold = _cold_run(
        program, edges, other_facts, cold_options.to_engine_config()
    )
    cold_modeled = cold.cluster.ledger.total_seconds()
    names = sorted(cold.store.relations)
    identical_answers = session.relation(answer_rel) == cold.store[
        answer_rel
    ].as_set()
    identical_multisets = all(
        sorted(session.engine.store[n].iter_full())
        == sorted(cold.store[n].iter_full())
        for n in names
    )
    update_modeled = sum(update_costs)
    speedup = (
        cold_modeled / update_modeled if update_modeled > 0 else float("inf")
    )
    fp = session.result()
    report = fp.to_dict()
    report.update(
        query=args.query,
        dataset=args.dataset,
        ranks=args.ranks,
        base_modeled_seconds=base_modeled,
        update_modeled_seconds=update_modeled,
        cold_modeled_seconds=cold_modeled,
        speedup_vs_cold=speedup,
        identical_answers=identical_answers,
        identical_multisets=identical_multisets,
    )
    if not quiet:
        print(
            f"cold recompute (union EDB): {cold_modeled:.6f}s modeled; "
            f"updates: {update_modeled:.6f}s modeled "
            f"({speedup:.1f}x cheaper)"
        )
        print(
            "identity vs cold recompute: answers "
            + ("MATCH" if identical_answers else "DIFFER")
            + ", full multisets "
            + ("MATCH" if identical_multisets else "DIFFER")
        )
        if fp.recovery is not None and fp.recovery.recoveries:
            print(
                f"recovery: {fp.recovery.recoveries} recovery(ies), "
                f"{fp.recovery.rolled_back_iterations} iteration(s) replayed"
            )
        print(f"wall (simulation host): {time.time() - t0:.2f}s")
    rc = _finish_obs(args, fp, report)
    if not (identical_answers and identical_multisets):
        return 1
    return rc


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments import hotpath, wirebench

    # With --compare the default is read-only: don't clobber the baseline
    # file we are comparing against unless --output says so explicitly.
    if sum((args.wire, args.rebalance, args.recovery, args.incremental)) > 1:
        raise SystemExit(
            "--wire, --rebalance, --recovery and --incremental are "
            "mutually exclusive"
        )
    output = args.output
    if output is None:
        if args.compare:
            output = "-"
        elif args.incremental:
            output = "BENCH_PR10.json"
        elif args.recovery:
            output = "BENCH_PR9.json"
        elif args.rebalance:
            output = "BENCH_PR8.json"
        else:
            output = "BENCH_PR7.json" if args.wire else "BENCH_PR2.json"
    baseline = None
    if args.compare:
        from repro.obs.analysis import validate_bench_snapshot

        try:
            with open(args.compare) as fh:
                baseline = json.load(fh)
            validate_bench_snapshot(baseline)
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            raise SystemExit(f"bad baseline {args.compare}: {exc}")
    if args.incremental:
        import functools

        from repro.experiments import incremental as incremental_bench

        bench_mod = incremental_bench
        runner = functools.partial(
            incremental_bench.run_incremental_bench,
            batch_frac=args.batch_frac,
        )
    elif args.recovery:
        from repro.experiments import recovery as recovery_bench

        bench_mod = recovery_bench
        runner = recovery_bench.run_recovery_bench
    elif args.rebalance:
        from repro.experiments import rebalance as rebalance_bench

        bench_mod = rebalance_bench
        runner = rebalance_bench.run_rebalance_bench
    else:
        bench_mod = wirebench if args.wire else hotpath
        runner = (
            wirebench.run_wire_bench if args.wire else hotpath.run_hotpath_bench
        )
    report = runner(
        dataset=args.dataset,
        ranks=args.ranks,
        seed=args.seed,
        scale_shift=args.scale_shift,
        sources=[int(s) for s in args.sources.split(",") if s],
        edge_subbuckets=args.subbuckets,
        queries=[q for q in args.queries.split(",") if q],
        wire=_wire_config(args),
    )
    if output != "-":
        with open(output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(bench_mod.render(report))
        if output != "-":
            print(f"[report written to {output}]")
    if not report["all_identical"]:
        return 1
    if baseline is not None:
        from repro.obs.analysis import compare_bench_snapshots, render_bench_comparison

        try:
            comparison = compare_bench_snapshots(
                baseline, report, tolerance_pct=args.tolerance
            )
        except ValueError as exc:
            raise SystemExit(f"cannot compare against {args.compare}: {exc}")
        print(render_bench_comparison(comparison))
        return 0 if comparison["ok"] else 1
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.metrics.obsreport import render_rank_utilization, render_span_summary
    from repro.obs.analysis import (
        diagnose,
        render_comm_heatmap,
        render_compute_heatmap,
        write_flamegraph,
    )
    from repro.obs.export import load_trace, validate_trace_file

    try:
        validation = validate_trace_file(args.trace_file, fmt=args.format)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        raise SystemExit(f"invalid trace {args.trace_file}: {exc}")
    spans, metrics, meta = load_trace(args.trace_file, fmt=args.format)
    lane_spans = [sp for sp in spans if sp.rank is not None]
    # Offline ground truth for the critical-path check: the span stream
    # tiles the modeled timeline, so its right edge is the ledger total.
    expected_total = max((sp.modeled_end for sp in lane_spans), default=0.0)
    diagnostics = diagnose(
        spans, metrics=metrics, expected_total=expected_total or None
    )
    report = {
        "trace": args.trace_file,
        "validation": {
            k: sorted(v) if isinstance(v, set) else v
            for k, v in validation.items()
        },
        "meta": meta,
        "diagnostics": diagnostics.to_dict(),
    }
    if args.flamegraph:
        n_stacks = write_flamegraph(args.flamegraph, spans)
        report["flamegraph"] = {"path": args.flamegraph, "stacks": n_stacks}
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
        return 0
    n_lanes = len({sp.rank for sp in lane_spans})
    print(f"{args.trace_file}: valid trace, {len(spans)} spans, "
          f"{n_lanes} rank lane(s)")
    if meta.get("command"):
        print(f"  recorded by: paralagg {meta['command']}")
    print(render_span_summary(spans))
    print(render_rank_utilization(spans))
    print(diagnostics.render())
    if lane_spans:
        print(render_compute_heatmap(spans))
    if diagnostics.comm_profile is not None and len(diagnostics.comm_profile):
        print(render_comm_heatmap(diagnostics.comm_profile))
    elif not args.json:
        print("(no comm matrices in trace: record with --diagnostics "
              "to enable offline comm analysis)")
    if args.flamegraph:
        print(f"flamegraph: {report['flamegraph']['stacks']} stacks -> "
              f"{args.flamegraph}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    base = defaults_from_env()
    defaults = ExperimentDefaults(
        scale_shift=base.scale_shift if args.scale_shift is None else args.scale_shift,
        full=args.full or base.full,
        seed=base.seed,
    )
    t0 = time.time()
    if args.name == "fig2":
        print(fig2.render(fig2.run_fig2(defaults)))
    elif args.name == "fig3":
        print(fig3.render(fig3.run_fig3(defaults)))
    elif args.name == "fig4":
        print(fig4.render(fig4.run_fig4(defaults)))
    elif args.name == "fig5":
        print(fig5.render(fig5.run_fig5(defaults)))
    elif args.name == "fig6":
        print(fig6.render(fig6.run_fig6(defaults)))
    elif args.name == "fig7":
        print(fig7.render(fig7.run_fig7(defaults)))
    elif args.name == "table1":
        print(table1.render(table1.run_table1(defaults)))
    elif args.name == "table2":
        print(table2.render(table2.run_table2(defaults)))
    elif args.name == "recovery":
        from repro.experiments import recovery

        print(recovery.render(recovery.run_recovery(defaults)))
    elif args.name == "all":
        for sub in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                    "table1", "table2", "ablations"):
            sub_args = argparse.Namespace(
                name=sub, full=args.full, scale_shift=args.scale_shift
            )
            _cmd_experiment(sub_args)
    elif args.name == "ablations":
        print(ablations.render(ablations.run_join_order_ablation(defaults),
                               "Ablation — join-order selection"))
        print()
        print(ablations.render(ablations.run_aggregation_placement_ablation(defaults),
                               "Ablation — aggregation placement"))
    print(f"\n[{args.name} regenerated in {time.time() - t0:.1f}s]")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import pathlib

    import numpy as np

    from repro.planner.parser import parse_program
    from repro.runtime.engine import Engine

    if args.spmd and (args.trace or args.json or _want_diagnostics(args)):
        raise SystemExit(
            "--trace/--json/--diagnostics require the BSP driver (drop --spmd)"
        )
    source = pathlib.Path(args.file).read_text()
    parsed = parse_program(source)
    tracer = Tracer() if args.trace or _want_diagnostics(args) else None
    engine = Engine(parsed.program, _engine_config(args, tracer=tracer))
    if args.explain:
        print(engine.explain())
    for name, rows in parsed.facts.items():
        engine.load(name, rows)
    file_inputs = dict(parsed.inputs)
    for spec in args.facts:
        rel, _, path = spec.partition("=")
        if not path:
            raise SystemExit(f"--facts needs REL=PATH, got {spec!r}")
        file_inputs[rel] = path
    all_facts = dict(parsed.facts)
    for rel, path in file_inputs.items():
        rows = np.loadtxt(path, dtype=np.int64, ndmin=2)
        loaded = [tuple(int(v) for v in r) for r in rows]
        engine.load(rel, loaded)
        all_facts.setdefault(rel, []).extend(loaded)
    t0 = time.time()
    if args.spmd:
        from repro.runtime.spmd import run_spmd_engine

        relations = run_spmd_engine(
            parsed.program, all_facts,
            EngineConfig(n_ranks=args.ranks, wire=_wire_config(args)),
        )
        lookup = relations.__getitem__
        footer = f"[SPMD engine, wall {time.time() - t0:.2f}s]"
    else:
        result = engine.run()
        lookup = result.query
        footer = (f"[{result.iterations} iterations, "
                  f"modeled {result.modeled_seconds():.6f}s, "
                  f"wall {time.time() - t0:.2f}s]")
    outputs = parsed.outputs or tuple(
        r.head.relation for r in parsed.program.rules
    )
    quiet = getattr(args, "json", False)
    output_sizes = {}
    for name in dict.fromkeys(outputs):
        tuples = sorted(lookup(name))
        output_sizes[name] = len(tuples)
        if quiet:
            continue
        shown = tuples[: args.limit]
        print(f"{name}: {len(tuples)} tuple(s)")
        for t in shown:
            print(f"  {name}{t}")
        if len(tuples) > len(shown):
            print(f"  ... {len(tuples) - len(shown)} more")
    if args.spmd:
        print(footer)
        return 0
    if not quiet:
        print(footer)
    report = _base_report(result, ranks=args.ranks)
    report.update(program=args.file, outputs=output_sizes)
    return _finish_obs(args, result, report)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "update":
        return _cmd_update(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "trace-report":
        return _cmd_trace_report(args)
    return _cmd_experiment(args)


if __name__ == "__main__":
    sys.exit(main())
