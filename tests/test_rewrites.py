"""Tests for the compiler rewrites: n-ary chain decomposition and
automatic secondary-index copies."""

import pytest

from repro import Engine, EngineConfig, MIN, Program, Rel, vars_
from repro.planner.compile_rules import (
    add_index_copies,
    compile_program,
    decompose_program,
)
from repro.planner.interpreter import interpret

x, y, z, w, m, l, n = vars_("x y z w m l n")


def run(prog, facts, n_ranks=5, **cfg):
    eng = Engine(prog, EngineConfig(n_ranks=n_ranks, **cfg))
    for name, rows in facts.items():
        eng.load(name, rows)
    return eng.run()


class TestChainDecomposition:
    def test_two_atom_rules_untouched(self):
        e = Rel("e")
        prog = Program(rules=[Rel("r")(x, z) <= (e(x, y), e(y, z))],
                       edb={"e": (2, (0,))})
        assert decompose_program(prog) is prog

    def test_three_atoms_produce_one_aux(self):
        a, b, c = Rel("a"), Rel("b"), Rel("c")
        prog = Program(
            rules=[Rel("r")(x, w) <= (a(x, y), b(y, z), c(z, w))],
            edb={"a": (2, (0,)), "b": (2, (0,)), "c": (2, (0,))},
        )
        rewritten = decompose_program(prog)
        assert len(rewritten.rules) == 2
        aux = rewritten.rules[0].head
        assert aux.relation.startswith("__aux")
        # the aux carries exactly the variables the rest still needs
        assert {t.name for t in aux.terms} == {"x", "z"}

    def test_four_atom_chain(self):
        a = Rel("a")
        prog = Program(
            rules=[
                Rel("r")(x) <= (a(x, y), a(y, z), a(z, w), a(w, x)),
            ],
            edb={"a": (2, (0,))},
        )
        rewritten = decompose_program(prog)
        assert len(rewritten.rules) == 3

    def test_disconnected_chain_rejected(self):
        a, b, c = Rel("a"), Rel("b"), Rel("c")
        prog = Program(
            rules=[Rel("r")(x, z) <= (a(x), b(z), c(x, z))],
            edb={"a": (1, (0,)), "b": (1, (0,)), "c": (2, (0,))},
        )
        with pytest.raises(ValueError, match="no variables connect|shared variable"):
            compile_program(prog)

    def test_four_cycle_query_end_to_end(self):
        a = Rel("a")
        prog = Program(
            rules=[Rel("sq")(x) <= (a(x, y), a(y, z), a(z, w), a(w, x))],
            edb={"a": (2, (0,))},
        )
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 0)]
        oracle = interpret(prog, {"a": edges})
        res = run(prog, {"a": edges})
        assert res.query("sq") == oracle["sq"]
        assert (0,) in res.query("sq")

    def test_aggregate_stays_in_final_head(self):
        cost, e = Rel("cost"), Rel("e")
        prog = Program(
            rules=[
                cost(x, MIN(l + w)) <= (cost(x, l), e(x, y), Rel("wt")(y, w)),
            ],
            edb={"e": (2, (0,)), "wt": (2, (0,))},
        )
        rewritten = decompose_program(prog)
        assert rewritten.rules[0].head.agg_terms() == ()
        assert rewritten.rules[-1].head.agg_terms() != ()


class TestIndexCopies:
    def test_self_join_tc_variant(self):
        """path(x,z) ← path(x,y), path(y,z): joins path on both columns."""
        path, e = Rel("path"), Rel("e")
        prog = Program(
            rules=[
                path(x, y) <= e(x, y),
                path(x, z) <= (path(x, y), path(y, z)),
            ],
            edb={"e": (2, (0,))},
        )
        edges = [(0, 1), (1, 2), (2, 3)]
        oracle = interpret(prog, {"e": edges})
        res = run(prog, {"e": edges})
        assert res.query("path") == oracle["path"]
        assert (0, 3) in res.query("path")

    def test_copy_schema_keyed_for_secondary_path(self):
        path, e = Rel("path"), Rel("e")
        prog = Program(
            rules=[
                path(x, y) <= e(x, y),
                path(x, z) <= (path(x, y), path(y, z)),
            ],
            edb={"e": (2, (0,))},
        )
        cp = compile_program(prog)
        copies = [n for n in cp.schemas if n.startswith("__idx_path")]
        assert len(copies) == 1
        base_key = cp.schemas["path"].join_cols
        copy_key = cp.schemas[copies[0]].join_cols
        assert {base_key, copy_key} == {(0,), (1,)}

    def test_aggregate_copy_keeps_aggregator(self):
        """A secondary index over an aggregate relation must fold the same
        lattice — never store stale partial values."""
        spath, e, probe2 = Rel("spath"), Rel("e"), Rel("probe2")
        f, t = vars_("f t")
        prog = Program(
            rules=[
                spath(n, n, 0) <= Rel("start")(n),
                spath(f, t, MIN(l + w)) <= (spath(f, m, l), e(m, t, w)),
                # second access path: spath keyed by its first column
                probe2(f, m) <= (spath(f, m, l), Rel("seed")(f)),
            ],
            edb={"e": (3, (0,)), "start": (1, (0,)), "seed": (1, (0,))},
        )
        cp = compile_program(prog)
        copies = [n for n in cp.schemas if n.startswith("__idx_spath")]
        assert len(copies) == 1
        copy_schema = cp.schemas[copies[0]]
        assert copy_schema.is_aggregate
        assert copy_schema.aggregator.name == "min"
        # end-to-end: the copy holds exactly the final accumulators
        facts = {"e": [(0, 1, 5), (1, 2, 1), (0, 2, 9)],
                 "start": [(0,)], "seed": [(0,)]}
        res = run(prog, facts)
        assert res.query(copies[0]) == res.query("spath")
        assert res.query("probe2") == {(0, 1), (0, 2), (0, 0)}

    def test_no_copies_when_keys_agree(self):
        from repro.queries.sssp import sssp_program

        cp = compile_program(sssp_program())
        assert not any(n.startswith("__idx") for n in cp.schemas)

    def test_parser_n_ary_rule(self):
        from repro.planner.parser import parse_program

        parsed = parse_program(
            ".decl e(x, y) keys(x)\n"
            "e(0,1). e(1,2). e(2,0).\n"
            "tri(x, y, z) :- e(x, y), e(y, z), e(z, x).\n"
            ".output tri\n"
        )
        res = run(parsed.program, parsed.facts)
        assert (0, 1, 2) in res.query("tri")
