"""The deterministic fault-injection plane.

One :class:`FaultPlane` instance sits under a comm substrate
(:class:`repro.comm.simcluster.SimCluster` or
:mod:`repro.comm.asyncmpi`) and answers two questions:

* *Is anyone dead?* — the plane counts collective **supersteps**; when
  the configured crash superstep is reached, the victim rank enters
  :attr:`crashed` and every rendezvous raises :class:`RankFailure`
  instead of deadlocking.  The engine's recovery protocol calls
  :meth:`mark_restarted` once the rank's shard has been re-seeded from a
  checkpoint.
* *What happens to this message?* — :meth:`deliveries` plans the fate of
  one payload (delivered / dropped / duplicated / corrupted) from a RNG
  seeded purely by ``(config.seed, superstep, src, dst, attempt)``, so a
  replayed schedule re-draws exactly the same faults and recovery can be
  verified bit-for-bit against a fault-free run.

Checksums use CRC-32 over the pickled payload — the same integrity check
per-message CRCs give real interconnects — so any corruption the plane
injects is *detectable* by the receiver without reference to the sender.
"""

from __future__ import annotations

import pickle
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.faults.config import FaultConfig

#: Fixed odd multipliers for the seed mix (splitmix64-style), so the
#: per-message RNG stream is decoupled across (superstep, src, dst, attempt).
_MIX = (0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 0xD6E8FEB86659FD93)


class FaultError(RuntimeError):
    """Base class for everything the fault plane can surface."""


class RankFailure(FaultError):
    """A rank died; detected at a collective rendezvous.

    Carries enough context for the recovery protocol: which rank, at
    which superstep, and which collective detected it.
    """

    def __init__(self, rank: int, superstep: int, where: str):
        self.rank = rank
        self.superstep = superstep
        self.where = where
        super().__init__(
            f"rank {rank} failed (detected at {where}, superstep {superstep})"
        )


class PermanentRankFailure(RankFailure):
    """A rank is gone for good — no spare will rejoin.

    The failure detector escalates to this class when the configured
    crash is permanent (``crash_perm=R@S``) or when the retransmission
    budget toward a permanently-dead peer is exhausted.  Recovery must
    re-own the dead rank's buckets onto the survivors and restore its
    state from a checkpoint replica.
    """

    def __init__(self, rank: int, superstep: int, where: str):
        super().__init__(rank, superstep, where)
        # Re-render the message with the permanent classification.
        self.args = (
            f"rank {rank} permanently lost (detected at {where}, "
            f"superstep {superstep})",
        )


class UnrecoverableRankLoss(FaultError):
    """A permanent rank loss that recovery cannot survive.

    Raised (loudly, never silently wrong) when the dead rank's state has
    no surviving copy: either checkpoint replication was off
    (``replicas=0``) or every buddy holding a replica is itself dead.
    """

    def __init__(self, rank: int, superstep: int, reason: str):
        self.rank = rank
        self.superstep = superstep
        super().__init__(
            f"rank {rank} permanently lost at superstep {superstep} and its "
            f"state cannot be restored: {reason}"
        )


class MessageLossError(FaultError):
    """A message could not be delivered within the retransmission budget."""

    def __init__(self, src: int, dst: int, attempts: int):
        self.src = src
        self.dst = dst
        self.attempts = attempts
        super().__init__(
            f"message {src} -> {dst} undeliverable after {attempts} attempt(s) "
            "(drop/corruption exceeded the retry budget)"
        )


class CorruptionError(FaultError):
    """Corrupted data reached storage (checksum or invariant violation)."""


def payload_checksum(payload: Any) -> int:
    """CRC-32 of the canonically pickled payload (per-message integrity)."""
    return zlib.crc32(pickle.dumps(payload, protocol=4))


def classify_loss(plane: "FaultPlane", src: int, dst: int, attempt: int) -> FaultError:
    """The failure detector: classify retry-budget exhaustion.

    A flaky link toward a *live* peer is a
    :class:`MessageLossError`; exhaustion toward a *permanently dead*
    endpoint is how survivors detect the loss without a membership
    service — escalate to :class:`PermanentRankFailure` so recovery
    re-owns the dead rank instead of waiting for a spare.  Shared by both
    comm substrates.
    """
    for rank in (dst, src):
        if plane.is_permanent(rank):
            return plane.failure_for(
                rank, plane.superstep, f"retry budget exhausted toward rank {rank}"
            )
    return MessageLossError(src, dst, attempt)


# --------------------------------------------------------------- corruption


def _count_leaves(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return int(obj.size)
    if isinstance(obj, (tuple, list)):
        return sum(_count_leaves(x) for x in obj)
    if isinstance(obj, (int, np.integer)) and not isinstance(obj, bool):
        return 1
    return 0


class _Mutator:
    """Copy a payload, flipping a bit in exactly one integer leaf."""

    def __init__(self, target: int, bit: int):
        self.remaining = target
        self.bit = bit
        self.hit = False

    def visit(self, obj: Any) -> Any:
        if self.hit:
            return obj
        if isinstance(obj, np.ndarray):
            n = int(obj.size)
            if self.remaining < n:
                out = obj.copy()
                out.reshape(-1)[self.remaining] ^= np.int64(1) << self.bit
                self.hit = True
                return out
            self.remaining -= n
            return obj
        if isinstance(obj, (tuple, list)):
            items = [self.visit(x) for x in obj]
            return tuple(items) if isinstance(obj, tuple) else items
        if isinstance(obj, (int, np.integer)) and not isinstance(obj, bool):
            if self.remaining == 0:
                self.hit = True
                return int(obj) ^ (1 << self.bit)
            self.remaining -= 1
            return obj
        return obj


def corrupt_payload(payload: Any, rng: random.Random) -> Any:
    """Return a copy of ``payload`` with one integer leaf bit-flipped.

    Models a wire-level bit flip in tuple data.  Payloads with no integer
    leaves (nothing to flip) are wrapped in a tagged envelope instead —
    the pickled form still differs, so the checksum still catches it.
    """
    n = _count_leaves(payload)
    if n == 0:
        return ["__corrupted__", payload]
    # Flip a bit low enough to keep values in a plausible range but high
    # enough that the flip always changes the leaf.
    mut = _Mutator(rng.randrange(n), rng.randrange(1, 20))
    out = mut.visit(payload)
    assert mut.hit, "corruption mutator failed to land"
    return out


# -------------------------------------------------------------- statistics


@dataclass
class InjectionStats:
    """What the plane actually did to a run (all counters monotone)."""

    supersteps: int = 0
    drops: int = 0
    dups: int = 0
    corruptions: int = 0
    crashes: int = 0
    permanent_crashes: int = 0
    #: Receiver-side detections and repairs (filled in by the substrate).
    detected_corruptions: int = 0
    retransmits: int = 0
    retransmitted_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "supersteps": self.supersteps,
            "drops": self.drops,
            "dups": self.dups,
            "corruptions": self.corruptions,
            "crashes": self.crashes,
            "permanent_crashes": self.permanent_crashes,
            "detected_corruptions": self.detected_corruptions,
            "retransmits": self.retransmits,
            "retransmitted_bytes": self.retransmitted_bytes,
        }


#: One planned delivery: the (possibly corrupted) payload plus whether it
#: left the sender intact.
Delivery = Tuple[Any, bool]


class FaultPlane:
    """Deterministic, seeded fault injector for one simulated run."""

    def __init__(self, config: FaultConfig, n_ranks: int):
        if config.crash_rank is not None and config.crash_rank >= n_ranks:
            raise ValueError(
                f"crash_rank {config.crash_rank} out of range for {n_ranks} ranks"
            )
        if config.crash_perm_rank is not None and config.crash_perm_rank >= n_ranks:
            raise ValueError(
                f"crash_perm_rank {config.crash_perm_rank} out of range "
                f"for {n_ranks} ranks"
            )
        for rank in config.stragglers:
            if rank >= n_ranks:
                raise ValueError(
                    f"straggler rank {rank} out of range for {n_ranks} ranks"
                )
        self.config = config
        self.n_ranks = n_ranks
        self.superstep = 0
        self.crashed: set[int] = set()
        #: Ranks permanently lost (never rejoin; see :meth:`is_permanent`).
        self.permanent: set[int] = set()
        #: Permanently-lost ranks whose state recovery already re-owned:
        #: rendezvous no longer raise for them, but they stay dead.
        self.excluded: set[int] = set()
        self._crash_fired = False
        self.stats = InjectionStats()

    # ------------------------------------------------------------- failures

    def begin_superstep(self, kind: str) -> int:
        """Advance the collective clock; returns the step just entered."""
        step = self.superstep
        self.superstep += 1
        self.stats.supersteps += 1
        return step

    def crash_due(self, step: int) -> Optional[int]:
        """Fire the configured crash if its superstep has arrived.

        Fires at most once per run: after the engine restarts the rank
        from a checkpoint, replayed supersteps do not re-kill it.
        """
        cfg = self.config
        if (
            not self._crash_fired
            and cfg.crash_rank is not None
            and step >= (cfg.crash_superstep or 0)
        ):
            self._crash_fired = True
            self.crashed.add(cfg.crash_rank)
            self.stats.crashes += 1
            return cfg.crash_rank
        if (
            not self._crash_fired
            and cfg.crash_perm_rank is not None
            and step >= (cfg.crash_perm_superstep or 0)
        ):
            self._crash_fired = True
            self.crashed.add(cfg.crash_perm_rank)
            self.permanent.add(cfg.crash_perm_rank)
            self.stats.crashes += 1
            self.stats.permanent_crashes += 1
            return cfg.crash_perm_rank
        return None

    def failed_rank(self) -> Optional[int]:
        """Some dead rank, if any (simulation kills at most one at a time)."""
        return next(iter(self.crashed)) if self.crashed else None

    def check_alive(self, step: int, where: str) -> None:
        """Raise a (possibly permanent) failure if a crash is outstanding."""
        rank = self.crash_due(step)
        if rank is None:
            rank = self.failed_rank()
        if rank is not None:
            raise self.failure_for(rank, step, where)

    def is_permanent(self, rank: int) -> bool:
        """True when ``rank`` is lost for good (no spare will rejoin)."""
        return rank in self.permanent

    def failure_for(self, rank: int, step: int, where: str) -> RankFailure:
        """Classify a detected failure: transient vs permanent."""
        if self.is_permanent(rank):
            return PermanentRankFailure(rank, step, where)
        return RankFailure(rank, step, where)

    def mark_restarted(self, rank: int) -> None:
        """Recovery replaced the dead rank; rendezvous are healthy again."""
        if rank in self.permanent:
            raise ValueError(
                f"rank {rank} is permanently lost — no spare rejoins; "
                "recovery must mark_excluded() it instead"
            )
        self.crashed.discard(rank)

    def mark_excluded(self, rank: int) -> None:
        """Recovery re-owned the permanently-dead rank's state.

        The rank stays dead, but rendezvous stop raising for it: the
        survivors continue the fixpoint on the shrunken world.
        """
        self.excluded.add(rank)
        self.crashed.discard(rank)

    # ------------------------------------------------------------- messages

    @property
    def has_message_faults(self) -> bool:
        return self.config.has_message_faults

    def _rng(self, step: int, src: int, dst: int, attempt: int) -> random.Random:
        mixed = self.config.seed & 0xFFFFFFFFFFFFFFFF
        for value, mult in zip((step, src, dst, attempt), _MIX):
            mixed = (mixed ^ ((value + 1) * mult)) & 0xFFFFFFFFFFFFFFFF
            mixed = (mixed * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF
        return random.Random(mixed)

    def deliveries(
        self, step: int, src: int, dst: int, payload: Any, attempt: int = 0
    ) -> List[Delivery]:
        """Plan the fate of one message on the wire.

        Returns the list of copies that arrive at ``dst``: zero (dropped),
        one, or two (duplicated); each copy is independently either the
        original payload (intact) or a corrupted mutation.  Deterministic
        in ``(seed, superstep, src, dst, attempt)``.
        """
        drop, dup, corrupt = self.config.rates_for(src, dst)
        if drop == 0.0 and dup == 0.0 and corrupt == 0.0:
            return [(payload, True)]
        rng = self._rng(step, src, dst, attempt)
        if drop and rng.random() < drop:
            self.stats.drops += 1
            return []
        copies = 1
        if dup and rng.random() < dup:
            self.stats.dups += 1
            copies = 2
        out: List[Delivery] = []
        for _ in range(copies):
            if corrupt and rng.random() < corrupt:
                self.stats.corruptions += 1
                out.append((corrupt_payload(payload, rng), False))
            else:
                out.append((payload, True))
        return out

    # ------------------------------------------------------------ stragglers

    def straggler_scale(self) -> Optional[np.ndarray]:
        """Per-rank compute multipliers, or None when no stragglers."""
        if not self.config.stragglers:
            return None
        scale = np.ones(self.n_ranks)
        for rank, factor in self.config.stragglers.items():
            scale[rank] = factor
        return scale
