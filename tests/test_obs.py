"""Observability tests: tracer, metrics, ledger spans, exporters, CLI."""

import json

import numpy as np
import pytest

from repro import Engine, EngineConfig, Tracer
from repro.comm.costmodel import CommEvent
from repro.comm.ledger import PhaseLedger
from repro.obs import NULL_TRACER, MetricsRegistry, NullTracer
from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    validate_jsonl_trace,
    validate_trace_file,
    write_jsonl,
    write_trace,
)
from repro.obs.metrics import Histogram
from repro.queries.sssp import sssp_program

EDGES = [(0, 1, 4), (0, 2, 9), (1, 2, 1), (2, 3, 2), (3, 1, 1), (3, 4, 3)]
PIPELINE_PHASES = ("vote", "intra_bucket", "local_join", "comm", "dedup_agg")


def run_traced(n_ranks=4, **config_kwargs):
    tracer = Tracer()
    engine = Engine(
        sssp_program(), EngineConfig(n_ranks=n_ranks, tracer=tracer, **config_kwargs)
    )
    engine.load("edge", EDGES)
    engine.load("start", [(0,)])
    return engine.run(), tracer


@pytest.fixture(scope="module")
def traced():
    return run_traced()


class TestTracer:
    def test_span_nesting_parent_ids(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # children close (and are appended) before parents
        assert [s.name for s in tr.spans] == ["inner", "outer"]

    def test_wall_clock_monotone(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        (sp,) = tr.spans
        assert sp.wall_end >= sp.wall_start >= 0.0

    def test_modeled_clock_advances_only_by_charge(self):
        tr = Tracer()
        with tr.span("a") as sp:
            start, end = tr.advance_modeled(2.5)
        assert (start, end) == (0.0, 2.5)
        assert sp.modeled_start == 0.0 and sp.modeled_end == 2.5
        assert sp.modeled_seconds == 2.5
        with tr.span("b") as sp2:
            pass
        assert sp2.modeled_seconds == 0.0  # no charge, no modeled time

    def test_record_inherits_iteration_and_stratum(self):
        tr = Tracer()
        with tr.span("iteration", cat="iteration", iteration=3, stratum=1):
            sp = tr.record("local_join", rank=2, modeled_start=0.0, modeled_end=1.0)
        assert sp.iteration == 3 and sp.stratum == 1 and sp.rank == 2

    def test_span_closed_on_exception(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("broken"):
                raise ValueError("boom")
        assert len(tr.spans) == 1
        assert tr.spans[0].wall_end >= tr.spans[0].wall_start
        # the stack unwound: a new span is top-level again
        with tr.span("next") as sp:
            pass
        assert sp.parent_id is None

    def test_instant_zero_duration(self):
        tr = Tracer()
        tr.advance_modeled(1.0)
        sp = tr.instant("mark", attrs={"k": 1})
        assert sp.modeled_start == sp.modeled_end == 1.0
        assert sp.wall_seconds == 0.0
        assert sp.attrs == {"k": 1}


class TestNullTracer:
    def test_disabled_and_inert(self):
        tr = NullTracer()
        assert tr.enabled is False
        with tr.span("anything", rank=3) as sp:
            assert sp is None
        assert tr.spans == []
        assert tr.record("x") is None
        assert tr.advance_modeled(5.0) == (0.0, 0.0)

    def test_null_metrics_discard_writes(self):
        tr = NullTracer()
        tr.metrics.counter("c").inc(5)
        tr.metrics.histogram("h").observe_many([1.0, 2.0])
        assert tr.metrics.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_shared_singleton_never_accumulates(self):
        engine = Engine(sssp_program(), EngineConfig(n_ranks=2))
        engine.load("edge", EDGES)
        engine.load("start", [(0,)])
        result = engine.run()
        assert engine.tracer is NULL_TRACER
        assert result.spans == []
        assert NULL_TRACER.spans == []


class TestMetricsRegistry:
    def test_get_or_create(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        m.counter("a").inc()
        m.counter("a").inc(2)
        assert m.counter("a").value == 3
        m.gauge("g").set(1.5)
        assert m.gauge("g").value == 1.5

    def test_histogram_stats(self):
        h = Histogram("h")
        h.observe_many([4, 1, 3, 2])
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == 2.5
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 4.0
        s = h.summary()
        assert s["min"] == 1.0 and s["max"] == 4.0 and s["count"] == 4

    def test_histogram_empty_and_bad_percentile(self):
        h = Histogram("h")
        assert h.summary()["count"] == 0
        assert h.percentile(50) == 0.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_as_dict_is_json_serializable(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.gauge("g").set(2.0)
        m.histogram("h").observe(1.0)
        json.dumps(m.as_dict())


class TestLedgerSpans:
    def test_compute_step_emits_per_rank_spans(self):
        tr = Tracer()
        ledger = PhaseLedger(n_ranks=3, tracer=tr)
        ledger.add_compute_step("local_join", np.array([1.0, 0.5, 0.0]))
        spans = [s for s in tr.spans if s.cat == "compute"]
        # rank 2 did no work -> no span; others sized to their own seconds
        assert {(s.rank, s.modeled_seconds) for s in spans} == {(0, 1.0), (1, 0.5)}
        # the clock advanced by the superstep max
        assert tr.modeled_now == 1.0
        assert ledger.total_seconds() == 1.0

    def test_comm_emits_span_on_every_rank(self):
        tr = Tracer()
        ledger = PhaseLedger(n_ranks=4, tracer=tr)
        ledger.add_comm(CommEvent(
            kind="alltoallv", phase="comm", nbytes=640, messages=12, seconds=0.25,
        ))
        spans = [s for s in tr.spans if s.cat == "comm"]
        assert sorted(s.rank for s in spans) == [0, 1, 2, 3]
        assert all(s.name == "alltoallv" for s in spans)
        assert all(s.attrs["nbytes"] == 640 for s in spans)
        assert all((s.modeled_start, s.modeled_end) == (0.0, 0.25) for s in spans)
        assert tr.metrics.counter("comm_bytes").value == 640

    def test_modeled_clock_matches_ledger_total(self):
        tr = Tracer()
        ledger = PhaseLedger(n_ranks=2, tracer=tr)
        ledger.add_compute_step("a", np.array([1.0, 2.0]))
        ledger.add_compute_scalar("b", 0.5)
        ledger.add_comm(CommEvent("allreduce", "vote", 8, 2, 0.125))
        assert tr.modeled_now == pytest.approx(ledger.total_seconds())

    def test_scalar_compute_charges_every_rank(self):
        """Regression: scalar compute must charge rank_compute (it used to
        vanish, silently skewing imbalance_ratio downward)."""
        ledger = PhaseLedger(n_ranks=4)
        ledger.add_compute_step("a", np.array([4.0, 0.0, 0.0, 0.0]))
        assert ledger.imbalance_ratio() == pytest.approx(4.0)
        ledger.add_compute_scalar("a", 1.0)
        # replicated work: every rank +1 -> max 5, mean 2
        assert np.allclose(ledger.rank_compute, [5.0, 1.0, 1.0, 1.0])
        assert ledger.imbalance_ratio() == pytest.approx(2.5)
        # phase charge is the step time, not n_ranks * step
        assert ledger.phase("a") == pytest.approx(5.0)

    def test_scalar_only_ledger_is_balanced(self):
        ledger = PhaseLedger(n_ranks=8)
        ledger.add_compute_scalar("setup", 2.0)
        assert ledger.imbalance_ratio() == pytest.approx(1.0)
        assert float(ledger.rank_compute.sum()) == pytest.approx(16.0)


class TestEngineIntegration:
    def test_all_pipeline_phases_have_spans(self, traced):
        result, _ = traced
        names = {s.name for s in result.spans if s.cat == "phase"}
        for phase in PIPELINE_PHASES:
            assert phase in names

    def test_rank_lanes_present(self, traced):
        result, _ = traced
        assert {s.rank for s in result.spans if s.rank is not None} == {0, 1, 2, 3}
        lane = result.rank_spans(0)
        assert lane and all(s.rank == 0 for s in lane)
        starts = [s.modeled_start for s in lane]
        assert starts == sorted(starts)

    def test_iteration_and_stratum_spans(self, traced):
        result, _ = traced
        iters = [s for s in result.spans if s.cat == "iteration"]
        assert len(iters) >= result.iterations
        assert {s.cat for s in result.spans} >= {"run", "stratum", "iteration"}

    def test_span_stream_matches_ledger_and_timer_deltas(self, traced):
        """Acceptance: PhaseLedger and PhaseTimer report identical
        per-iteration deltas to the span stream (single source of truth)."""
        result, _ = traced
        summaries = [s for s in result.spans if s.name == "iteration_summary"]
        assert summaries
        assert [s.attrs["modeled_phase_seconds"] for s in summaries] == (
            result.ledger.iterations
        )
        assert [s.attrs["wall_phase_seconds"] for s in summaries] == (
            result.timer.iterations
        )
        assert [t.phase_seconds for t in result.trace] == result.ledger.iterations
        assert [t.wall_phase_seconds for t in result.trace] == result.timer.iterations

    def test_modeled_clock_equals_modeled_seconds(self, traced):
        result, tracer = traced
        assert tracer.modeled_now == pytest.approx(result.modeled_seconds())

    def test_metrics_populated(self, traced):
        result, _ = traced
        md = result.metrics_dict()
        assert md["counters"]["tuples/admitted"] == result.counters["admitted"]
        assert md["gauges"]["iterations"] == result.iterations
        assert md["histograms"]["rank_compute_seconds"]["count"] == 4
        assert md["histograms"]["admitted_per_iteration"]["count"] == len(result.trace)

    def test_traced_run_result_unchanged(self, traced):
        """Tracing is observation only: results match an untraced run."""
        result, _ = traced
        engine = Engine(sssp_program(), EngineConfig(n_ranks=4))
        engine.load("edge", EDGES)
        engine.load("start", [(0,)])
        untraced = engine.run()
        assert untraced.query("spath") == result.query("spath")
        assert untraced.modeled_seconds() == pytest.approx(result.modeled_seconds())
        assert untraced.ledger.comm.bytes_total == result.ledger.comm.bytes_total


class TestChromeExport:
    def test_valid_and_loadable(self, traced, tmp_path):
        result, _ = traced
        path = str(tmp_path / "trace.json")
        n = result.write_trace(path, "chrome")
        with open(path) as fh:
            obj = json.load(fh)
        stats = validate_chrome_trace(obj)
        assert stats["events"] == n
        assert stats["rank_lanes"] == [0, 1, 2, 3]
        for phase in PIPELINE_PHASES:
            assert phase in stats["names"]

    def test_process_metadata_names_ranks(self, traced):
        result, _ = traced
        obj = chrome_trace(result.spans)
        meta = {
            ev["pid"]: ev["args"]["name"]
            for ev in obj["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert meta[0] == "driver (wall clock)"
        assert meta[1] == "rank 0 (modeled)"
        assert len(meta) == 5  # driver + 4 ranks

    def test_timestamps_non_negative_and_nested(self, traced):
        result, _ = traced
        stats = validate_chrome_trace(chrome_trace(result.spans))
        assert stats["events"] > 0  # validator enforces ts/dur/nesting

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"foo": 1})
        with pytest.raises(ValueError, match="missing"):
            validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "x"}]})
        with pytest.raises(ValueError, match="negative"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": -1, "dur": 1}
            ]})

    def test_rejects_overlapping_lane(self):
        events = [
            {"ph": "X", "name": "a", "pid": 1, "tid": 0, "ts": 0, "dur": 10},
            {"ph": "X", "name": "b", "pid": 1, "tid": 0, "ts": 5, "dur": 10},
        ]
        with pytest.raises(ValueError, match="overlaps"):
            validate_chrome_trace({"traceEvents": events})


class TestJsonlExport:
    def test_round_trip(self, traced, tmp_path):
        result, _ = traced
        path = str(tmp_path / "trace.jsonl")
        n = write_jsonl(path, result.spans, result.metrics, meta={"k": "v"})
        records = read_jsonl(path)
        assert len(records) == n
        assert records[0]["type"] == "meta" and records[0]["k"] == "v"
        stats = validate_jsonl_trace(records)
        assert stats["spans"] == len(result.spans)
        assert stats["ranks"] == [0, 1, 2, 3]
        for phase in PIPELINE_PHASES:
            assert phase in stats["names"]

    def test_validator_rejects_backwards_clocks(self, traced, tmp_path):
        result, _ = traced
        records = [json.loads(json.dumps(r)) for r in
                   read_jsonl_path(tmp_path, result)]
        for rec in records:
            if rec.get("type") == "span":
                rec["modeled_end"] = rec["modeled_start"] - 1.0
                break
        with pytest.raises(ValueError, match="backwards"):
            validate_jsonl_trace(records)

    def test_validator_rejects_span_count_mismatch(self, traced, tmp_path):
        result, _ = traced
        records = read_jsonl_path(tmp_path, result)
        with pytest.raises(ValueError, match="spans"):
            validate_jsonl_trace(records[:-2])


def read_jsonl_path(tmp_path, result):
    path = str(tmp_path / "rt.jsonl")
    write_jsonl(path, result.spans)
    return read_jsonl(path)


class TestWriteTraceDispatch:
    def test_unknown_format_rejected(self, traced, tmp_path):
        result, _ = traced
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(str(tmp_path / "x"), result.spans, "protobuf")

    def test_validate_trace_file_sniffs_format(self, traced, tmp_path):
        result, _ = traced
        chrome = str(tmp_path / "a.json")
        jsonl = str(tmp_path / "b.out")
        result.write_trace(chrome, "chrome")
        result.write_trace(jsonl, "jsonl")
        assert validate_trace_file(chrome)["rank_lanes"] == [0, 1, 2, 3]
        assert validate_trace_file(jsonl)["ranks"] == [0, 1, 2, 3]


class TestCli:
    def test_run_with_trace_and_json(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "trace.json")
        rc = main([
            "run", "sssp", "--dataset", "topcats", "--ranks", "4",
            "--scale-shift", "4", "--trace", path, "--json",
        ])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["iterations"] > 0
        assert set(PIPELINE_PHASES) <= set(report["phase_seconds"])
        assert report["trace"]["format"] == "chrome"
        assert validate_trace_file(path)["rank_lanes"] == [0, 1, 2, 3]

    def test_query_with_jsonl_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "trace.jsonl")
        rc = main([
            "query", "examples/programs/sssp.dl", "--ranks", "4",
            "--trace", path, "--trace-format", "jsonl",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "rank" in out
        stats = validate_trace_file(path)
        assert stats["ranks"] == [0, 1, 2, 3]

    def test_query_json_report(self, capsys):
        from repro.cli import main

        rc = main(["query", "examples/programs/sssp.dl", "--ranks", "2", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["outputs"]["spath"] > 0
        assert "phase_seconds" in report

    def test_spmd_rejects_trace(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="BSP"):
            main([
                "query", "examples/programs/sssp.dl", "--spmd",
                "--trace", str(tmp_path / "t.json"),
            ])
