"""Fused deduplication + local aggregation (paper §III-A, §IV-A).

BPRA's last join stage is *deduplication*: newly generated tuples arrive at
their home rank (via all-to-all on the hash of their key columns) and are
checked against local storage; only genuinely new tuples are materialized
into Δ.  The paper's insight is that monotonic aggregation **generalizes**
this step: instead of a set-membership test, the rank applies the
aggregator's ``partial_agg`` to the stored accumulator, and only an
accumulator *improvement* enters Δ.  Because the tuple's independent
columns fully determine its rank, no communication beyond the all-to-all
that plain Datalog already pays is needed — recursive aggregation comes for
free.

Two shard flavours implement the two cases over identical interfaces:

:class:`PlainShard`
    Set semantics — ``absorb`` is membership-insert (the trivial lattice).
:class:`AggregateShard`
    Lattice semantics — ``absorb`` is accumulator join; a non-improving
    tuple (e.g. a longer path than one already known) is dropped on the
    spot, never entering Δ nor costing downstream communication.

A shard holds one (bucket, sub-bucket) fragment of one relation on one
rank.  Storage is a nested index ``jk → other → materialized tuple``
mirroring the paper's "nested BTree": the outer level keyed by join
columns (probe key of local joins), the inner by the remaining independent
columns.  Values are the *full materialized tuples*, so join probes return
them without reconstruction — the Python analogue of the C++ engine
handing out pointers into the B-tree.  The default containers are hash
maps (CPython dicts); ``use_btree=True`` switches the outer index to
:class:`~repro.ds.btree.BTreeMap` for ordered scans, matching the C++
layout at some constant-factor cost.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.aggregators import RecursiveAggregator
from repro.ds.btree import BTreeMap
from repro.relational.schema import Schema

TupleT = Tuple[int, ...]


def _tuple_getter(cols: Tuple[int, ...]):
    """Compile a fast column extractor returning a tuple.

    ``operator.itemgetter`` returns a bare value for one index, so the
    single-column case is special-cased to keep keys uniformly tuples.
    """
    if not cols:
        empty: TupleT = ()
        return lambda t: empty
    if len(cols) == 1:
        c = cols[0]
        return lambda t: (t[c],)
    import operator

    return operator.itemgetter(*cols)


class AbsorbStats:
    """Counts from one absorb batch (drives compute-cost charging)."""

    __slots__ = ("received", "admitted", "suppressed")

    def __init__(self) -> None:
        self.received = 0
        self.admitted = 0
        self.suppressed = 0

    def __repr__(self) -> str:
        return (
            f"AbsorbStats(received={self.received}, admitted={self.admitted}, "
            f"suppressed={self.suppressed})"
        )


class _ShardBase:
    """Interface shared by plain and aggregate shards."""

    __slots__ = ("schema", "full", "delta", "_next_delta", "n_full", "n_delta", "_n_next")

    def __init__(self, schema: Schema, use_btree: bool = False):
        self.schema = schema
        #: jk → {other → materialized tuple}
        self.full = BTreeMap() if use_btree else {}
        self.delta: Dict[TupleT, Dict[TupleT, TupleT]] = {}
        self._next_delta: Dict[TupleT, Dict[TupleT, TupleT]] = {}
        self.n_full = 0
        #: |Δ| and |next Δ|, maintained incrementally so ``delta_size`` is
        #: O(1) — an improvement only counts on its *first* entry into the
        #: pending Δ (later improvements of the same group overwrite).
        self.n_delta = 0
        self._n_next = 0

    # ------------------------------------------------------------- iteration

    def advance(self) -> int:
        """Promote the freshly absorbed tuples to Δ; return |Δ|."""
        self.delta = self._next_delta
        self._next_delta = {}
        self.n_delta = self._n_next
        self._n_next = 0
        return self.n_delta

    def seed_delta_from_full(self) -> None:
        """Make Δ = full (used when (re)starting a fixpoint from loaded data)."""
        self.delta = {jk: dict(group) for jk, group in self.full.items()}
        self.n_delta = self.n_full

    # ----------------------------------------------------------------- sizes

    def full_size(self) -> int:
        return self.n_full

    def delta_size(self) -> int:
        return self.n_delta

    # ------------------------------------------------------------- iterators

    def iter_full(self) -> Iterator[TupleT]:
        for group in self.full.values():
            yield from group.values()

    def iter_delta(self) -> Iterator[TupleT]:
        for group in self.delta.values():
            yield from group.values()

    # ----------------------------------------------------------------- probes

    def probe_full(self, jk: TupleT) -> Iterable[TupleT]:
        """All full-version tuples whose join key equals ``jk``."""
        group = self.full.get(jk)
        return group.values() if group else ()

    def probe_delta(self, jk: TupleT) -> Iterable[TupleT]:
        group = self.delta.get(jk)
        return group.values() if group else ()

    def count_full(self, jk: TupleT) -> int:
        group = self.full.get(jk)
        return len(group) if group else 0

    # ------------------------------------------------------- block interface
    # Dict shards interoperate with the columnar executor through these
    # adapters (used for aggregators without a vector combiner, and for
    # the columnar join index over scalar-stored relations).

    def absorb_block(
        self, rows: "np.ndarray", stats: Optional[AbsorbStats] = None
    ) -> int:
        """Absorb an ``(n, arity)`` int64 row-block (same order as rows)."""
        return self.absorb(
            [tuple(r) for r in rows.tolist()], stats
        )  # type: ignore[attr-defined]

    def version_block(self, version: str) -> "np.ndarray":
        """One version's tuples as an ``(n, arity)`` int64 block, in the
        shard's nested iteration order."""
        it = self.iter_full() if version == "full" else self.iter_delta()
        rows = list(it)
        if not rows:
            return np.empty((0, self.schema.arity), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64)

    def install_state(
        self, full_rows: "np.ndarray", delta_rows: "np.ndarray"
    ) -> None:
        """Install a redistributed fragment wholesale (rebalance exchange).

        Only legal on a freshly created shard at an iteration boundary
        (``_next_delta`` empty): the rows arrive pre-deduplicated — every
        (jk, other) group lived in exactly one source shard — so this is
        pure insertion, never aggregation.  Insertion in delivery order
        reproduces the nested ``jk → other`` iteration order.
        """
        key_of = _tuple_getter(self.schema.join_cols)
        other_of = _tuple_getter(self.schema.other_cols)
        full = self.full
        for t in map(tuple, full_rows.tolist()):
            jk = key_of(t)
            group = full.get(jk)
            if group is None:
                group = {}
                full[jk] = group
            group[other_of(t)] = t
            self.n_full += 1
        delta = self.delta
        for t in map(tuple, delta_rows.tolist()):
            jk = key_of(t)
            dgroup = delta.get(jk)
            if dgroup is None:
                dgroup = delta[jk] = {}
            dgroup[other_of(t)] = t
            self.n_delta += 1

    def install_delta(self, delta_rows: "np.ndarray") -> int:
        """Replace Δ wholesale with the given rows (incremental seeding).

        Used by the incremental-maintenance layer to seed a resumed
        fixpoint: the rows are a change set already present in the full
        version, installed as Δ so downstream rules re-read exactly the
        changed tuples.  Insertion in delivery order reproduces the
        nested ``jk → other`` iteration order; the pending Δ is left
        untouched (it must be empty at an update boundary).
        """
        delta: Dict[TupleT, Dict[TupleT, TupleT]] = {}
        n = 0
        if delta_rows.shape[0]:
            key_of = _tuple_getter(self.schema.join_cols)
            other_of = _tuple_getter(self.schema.other_cols)
            for t in map(tuple, delta_rows.tolist()):
                jk = key_of(t)
                group = delta.get(jk)
                if group is None:
                    group = delta[jk] = {}
                group[other_of(t)] = t
            n = sum(len(g) for g in delta.values())
        self.delta = delta
        self.n_delta = n
        return n


class PlainShard(_ShardBase):
    """Set-semantics shard: fused dedup is plain membership-insert."""

    __slots__ = ()

    def absorb(
        self,
        tuples: Iterable[TupleT],
        stats: Optional[AbsorbStats] = None,
        collect: Optional[List[TupleT]] = None,
    ) -> int:
        """Insert new tuples; returns how many were genuinely new.

        ``collect``, if given, receives every admitted tuple (used by
        baseline engines that re-shuffle improvements).
        """
        schema = self.schema
        key_of = _tuple_getter(schema.join_cols)
        other_of = _tuple_getter(schema.other_cols)
        full = self.full
        next_delta = self._next_delta
        admitted = 0
        received = 0
        for t in tuples:
            received += 1
            jk = key_of(t)
            other = other_of(t)
            group = full.get(jk)
            if group is None:
                group = {}
                full[jk] = group
            if other in group:
                continue
            group[other] = t
            self.n_full += 1
            dgroup = next_delta.get(jk)
            if dgroup is None:
                dgroup = next_delta[jk] = {}
            dgroup[other] = t
            self._n_next += 1
            admitted += 1
            if collect is not None:
                collect.append(t)
        if stats is not None:
            stats.received += received
            stats.admitted += admitted
            stats.suppressed += received - admitted
        return admitted


class AggregateShard(_ShardBase):
    """Lattice-semantics shard: fused dedup *is* the local aggregation.

    ``full`` keeps at most one materialized tuple per aggregation group —
    the "collapse" that gives recursive aggregation its asymptotic edge
    over stratified aggregation (§II-C).
    """

    __slots__ = ("aggregator",)

    def __init__(self, schema: Schema, use_btree: bool = False):
        if schema.aggregator is None:
            raise ValueError(f"{schema.name}: AggregateShard requires an aggregator")
        super().__init__(schema, use_btree)
        self.aggregator: RecursiveAggregator = schema.aggregator

    def absorb(
        self,
        tuples: Iterable[TupleT],
        stats: Optional[AbsorbStats] = None,
        collect: Optional[List[TupleT]] = None,
    ) -> int:
        """Join incoming dependent values into accumulators.

        Returns the number of *improvements* (new groups or raised
        accumulators); everything else is suppressed with zero side
        effects — the paper's "no insertion is performed into Δ" rule.
        ``collect``, if given, receives the materialized improved tuples.
        """
        schema = self.schema
        key_of = _tuple_getter(schema.join_cols)
        other_of = _tuple_getter(schema.other_cols)
        n_indep = schema.n_indep
        agg = self.aggregator.partial_agg
        full = self.full
        next_delta = self._next_delta
        admitted = 0
        received = 0
        for t in tuples:
            received += 1
            jk = key_of(t)
            other = other_of(t)
            group = full.get(jk)
            if group is None:
                group = {}
                full[jk] = group
            cur = group.get(other)
            if cur is None:
                group[other] = t
                self.n_full += 1
                dgroup = next_delta.get(jk)
                if dgroup is None:
                    dgroup = next_delta[jk] = {}
                dgroup[other] = t
                self._n_next += 1
                admitted += 1
                if collect is not None:
                    collect.append(t)
                continue
            cur_dep = cur[n_indep:]
            joined = agg(cur_dep, t[n_indep:])
            if joined != cur_dep:
                new_t = cur[:n_indep] + joined
                group[other] = new_t
                dgroup = next_delta.get(jk)
                if dgroup is None:
                    dgroup = next_delta[jk] = {}
                if other not in dgroup:
                    self._n_next += 1
                dgroup[other] = new_t
                admitted += 1
                if collect is not None:
                    collect.append(new_t)
        if stats is not None:
            stats.received += received
            stats.admitted += admitted
            stats.suppressed += received - admitted
        return admitted

    def lookup(self, indep: TupleT) -> Optional[TupleT]:
        """Current accumulated dependent value for an independent key."""
        jk = tuple(indep[c] for c in self.schema.join_cols)
        other = tuple(indep[c] for c in self.schema.other_cols)
        group = self.full.get(jk)
        if not group:
            return None
        t = group.get(other)
        return None if t is None else t[self.schema.n_indep:]


def make_shard(schema: Schema, use_btree: bool = False, columnar: bool = False):
    """Factory selecting the shard flavour from the schema.

    ``columnar=True`` returns a numpy-backed shard from
    :mod:`repro.kernels.absorb` when the schema's aggregator has a vector
    combiner (always, for plain schemas); aggregators without one (custom
    or product lattices) fall back to the dict shards above, which the
    columnar executor drives through their block adapters.
    """
    if columnar and not use_btree:
        from repro.kernels.absorb import columnar_shard_for

        shard = columnar_shard_for(schema)
        if shard is not None:
            return shard
    if schema.is_aggregate:
        return AggregateShard(schema, use_btree)
    return PlainShard(schema, use_btree)
