"""Tests for the Bruck all-to-all collective."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.asyncmpi import run_spmd
from repro.comm.bruck import bruck_alltoall


async def _exchange(comm):
    rank, size = comm.Get_rank(), comm.Get_size()
    return await bruck_alltoall(comm, [f"{rank}->{d}" for d in range(size)])


class TestBruckAlltoall:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 4, 5, 7, 8, 13, 16])
    def test_matches_direct_alltoall(self, n_ranks):
        results = run_spmd(n_ranks, _exchange)
        for r in range(n_ranks):
            assert results[r] == [f"{s}->{r}" for s in range(n_ranks)]

    def test_arbitrary_objects(self):
        async def program(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            objs = [{"src": rank, "dst": d, "data": [rank] * d} for d in range(size)]
            return await bruck_alltoall(comm, objs)

        results = run_spmd(4, program)
        assert results[2][1] == {"src": 1, "dst": 2, "data": [1, 1]}

    def test_wrong_length_rejected(self):
        async def program(comm):
            return await bruck_alltoall(comm, [1])

        with pytest.raises(ValueError):
            run_spmd(3, program)

    def test_none_payloads_delivered(self):
        """``None`` is a legitimate message, not a lost-delivery sentinel."""

        async def program(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            objs = [None if (rank + d) % 2 == 0 else (rank, d)
                    for d in range(size)]
            return await bruck_alltoall(comm, objs)

        for n_ranks in (2, 3, 5, 8):
            results = run_spmd(n_ranks, program)
            for r in range(n_ranks):
                expected = [None if (s + r) % 2 == 0 else (s, r)
                            for s in range(n_ranks)]
                assert results[r] == expected

    def test_empty_payloads_round_trip(self):
        async def program(comm):
            size = comm.Get_size()
            return await bruck_alltoall(comm, [[] for _ in range(size)])

        results = run_spmd(5, program)
        assert all(res == [[]] * 5 for res in results)

    @given(
        n_ranks=st.integers(1, 9),
        payload_seed=st.integers(0, 2**20),
    )
    @settings(max_examples=25)
    def test_byte_identical_round_trip(self, n_ranks, payload_seed):
        """Property: every (src, dst) payload — bytes, None, nested, empty
        — arrives exactly once at its destination, for power-of-two and
        awkward world sizes alike."""
        import random

        rnd = random.Random(payload_seed)
        payloads = {
            (s, d): rnd.choice(
                [
                    None,
                    b"",
                    bytes(rnd.randbytes(rnd.randrange(0, 32))),
                    [rnd.randrange(-100, 100) for _ in range(rnd.randrange(4))],
                    {"s": s, "d": d},
                ]
            )
            for s in range(n_ranks)
            for d in range(n_ranks)
        }

        async def program(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            objs = [payloads[(rank, d)] for d in range(size)]
            return await bruck_alltoall(comm, objs)

        results = run_spmd(n_ranks, program)
        for r in range(n_ranks):
            assert results[r] == [payloads[(s, r)] for s in range(n_ranks)]

    def test_log_rounds_latency(self):
        """Bruck's point: message count per rank is O(log P), not O(P)."""

        async def program(comm):
            size = comm.Get_size()
            await bruck_alltoall(comm, list(range(size)))
            return None

        _, ledger = run_spmd(16, program, return_ledger=True)
        # 4 rounds x 16 ranks sends; a direct alltoall would send 16*15.
        assert ledger.comm.messages <= 16 * 5
