"""Recovery experiment — checkpoint overhead vs. replay cost.

Not a paper figure: the paper runs fault-free, but any real deployment of
its engine on thousands of ranks must survive rank loss.  This experiment
quantifies the classic checkpoint-interval trade-off *under the same
modeled cost machinery* the scaling figures use:

* sweep the checkpoint interval K — frequent checkpoints cost more
  modeled time up front but bound the work replayed after a crash;
* inject one rank crash mid-fixpoint (at a fixed collective superstep)
  and measure modeled recovery + replay cost at each K;
* verify every recovered run is bit-for-bit identical to the fault-free
  baseline (results, counters, per-rank relation sizes) — recovery is
  correct, not just fast.

Run via ``paralagg experiment recovery`` (``--full`` widens the sweep).

The module also hosts the PR 9 degraded-mode benchmark
(:func:`run_recovery_bench`, ``paralagg bench --recovery``, output
``BENCH_PR9.json``): a replication-overhead sweep (replicas 0..3,
fault-free) plus a permanent-loss matrix (``crash_perm`` × replicas 1/2 ×
scalar/columnar) whose degraded runs must match the fault-free run on
every placement-invariant quantity — query answers, per-iteration Δ
fingerprints, and iteration counts.  (Per-rank sizes legitimately differ
on the shrunken world, so the degraded identity check deliberately
excludes them; the scalar and columnar *degraded* runs must still agree
on the full summary with each other.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    ExperimentDefaults,
    defaults_from_env,
    optimized_config,
    render_table,
)
from repro.faults import FaultConfig
from repro.graphs.datasets import load_dataset
from repro.queries.sssp import run_sssp
from repro.runtime.config import EngineConfig

FULL_INTERVALS = (1, 2, 4, 8, 16)
QUICK_INTERVALS = (1, 2, 4, 8)

#: Collective superstep at which the injected rank dies (mid-fixpoint for
#: the quick dataset sizes; early enough to exist even on small sweeps).
CRASH_SUPERSTEP = 12
CRASH_RANK = 1


@dataclass
class RecoveryPoint:
    """One checkpoint-interval sample."""

    interval: int
    checkpoints: int
    checkpoint_seconds: float
    recovery_seconds: float
    replayed_iterations: int
    total_seconds: float
    #: modeled overhead vs. the fault-free baseline (seconds)
    overhead_seconds: float
    identical: bool


@dataclass
class RecoveryResult:
    query: str
    n_ranks: int
    baseline_seconds: float
    iterations: int
    points: List[RecoveryPoint] = field(default_factory=list)

    def all_identical(self) -> bool:
        return all(p.identical for p in self.points)


def _fingerprint(fp) -> Dict[str, object]:
    """The bit-for-bit identity a recovered run must reproduce."""
    return {
        "spath": fp.query("spath"),
        "counters": dict(sorted(fp.counters.items())),
        "sizes": {
            name: rel.full_sizes_by_rank().tolist()
            for name, rel in sorted(fp.relations.items())
        },
        "iterations": fp.iterations,
    }


def run_recovery(
    defaults: Optional[ExperimentDefaults] = None,
    *,
    n_ranks: int = 16,
    n_sources: int = 10,
) -> RecoveryResult:
    d = defaults or defaults_from_env()
    graph = load_dataset(
        "twitter_like", seed=d.seed, scale_shift=d.scale_shift, max_weight=4
    )
    sources = list(range(n_sources))

    base_cfg = optimized_config(n_ranks)
    baseline = run_sssp(graph, sources, base_cfg).fixpoint
    want = _fingerprint(baseline)
    result = RecoveryResult(
        query="sssp",
        n_ranks=n_ranks,
        baseline_seconds=baseline.modeled_seconds(),
        iterations=baseline.iterations,
    )

    faults = FaultConfig(crash_rank=CRASH_RANK, crash_superstep=CRASH_SUPERSTEP)
    for interval in (FULL_INTERVALS if d.full else QUICK_INTERVALS):
        cfg = EngineConfig(
            n_ranks=n_ranks,
            dynamic_join=base_cfg.dynamic_join,
            subbuckets=dict(base_cfg.subbuckets),
            seed=base_cfg.seed,
            faults=faults,
            checkpoint_every=interval,
        )
        fp = run_sssp(graph, sources, cfg).fixpoint
        rec = fp.recovery
        assert rec is not None
        result.points.append(
            RecoveryPoint(
                interval=interval,
                checkpoints=rec.checkpoints,
                checkpoint_seconds=rec.checkpoint_seconds,
                recovery_seconds=rec.recovery_seconds,
                replayed_iterations=rec.rolled_back_iterations,
                total_seconds=fp.modeled_seconds(),
                overhead_seconds=fp.modeled_seconds() - baseline.modeled_seconds(),
                identical=_fingerprint(fp) == want,
            )
        )
    return result


# ------------------------------------------------ degraded-mode bench (PR 9)

#: Checkpoint interval for every bench run (fixed so the only knob that
#: moves between runs is the replication factor / fault schedule).
BENCH_CKPT_EVERY = 2
#: Fault-free replication sweep.
REPLICA_SWEEP = (0, 1, 2, 3)
#: Permanent-loss matrix: replication factors that must survive the loss.
DEGRADED_REPLICAS = (1, 2)


def _bench_config(
    *,
    ranks: int,
    seed: int,
    subbuckets: int,
    wire,
    executor: str = "columnar",
    faults: Optional[FaultConfig] = None,
    replicas: int = 0,
) -> EngineConfig:
    return EngineConfig(
        n_ranks=ranks,
        subbuckets={"edge": subbuckets},
        seed=seed,
        executor=executor,
        wire=wire,
        faults=faults,
        checkpoint_every=BENCH_CKPT_EVERY,
        replicas=replicas,
        delta_fingerprints=True,
    )


def _invariant_fingerprint(query: str, res) -> Dict[str, object]:
    """The placement-invariant identity a degraded run must reproduce.

    Query answers, the per-iteration Δ fingerprints, and the iteration
    count — everything semantics-bearing.  Deliberately excludes per-rank
    sizes and the Algorithm-1 vote counters: those depend on *where*
    tuples live, which legitimately changes on a shrunken world.
    """
    fp = res.fixpoint
    return {
        "answers": res.distances if query == "sssp" else res.labels,
        "delta_fingerprints": [t.delta_fingerprints for t in fp.trace],
        "iterations": fp.iterations,
    }


def run_recovery_bench(
    *,
    dataset: str = "twitter_like",
    ranks: int = 16,
    seed: int = 42,
    scale_shift: int = 0,
    sources: Sequence[int] = (0, 1, 2),
    edge_subbuckets: int = 8,
    queries: Sequence[str] = ("sssp", "cc"),
    wire=None,
) -> Dict[str, object]:
    """Benchmark degraded-mode recovery; return the comparison report.

    Two sweeps per query: (1) fault-free with replicas 0..3 — what buddy
    replication costs when nothing fails; (2) a permanent rank loss under
    replicas 1/2 × scalar/columnar — what surviving it costs, with a hard
    identity check (``all_identical``) against the fault-free run on
    every placement-invariant quantity.
    """
    from repro.comm.wire import WireConfig
    from repro.experiments.hotpath import _executor_report, _run_one
    from repro.obs.analysis import stamp_bench_snapshot

    if wire is None:
        wire = WireConfig()
    graph = load_dataset(
        dataset, seed=seed, scale_shift=scale_shift, max_weight=4
    )
    faults = FaultConfig(
        crash_perm_rank=CRASH_RANK, crash_perm_superstep=CRASH_SUPERSTEP
    )
    report: Dict[str, object] = {
        "benchmark": "recovery",
        "dataset": dataset,
        "edges": int(graph.edges.shape[0]),
        "ranks": ranks,
        "seed": seed,
        "scale_shift": scale_shift,
        "edge_subbuckets": edge_subbuckets,
        "checkpoint_every": BENCH_CKPT_EVERY,
        "crash": {"rank": CRASH_RANK, "superstep": CRASH_SUPERSTEP},
        "queries": {},
        "recovery": {"replication": {}, "degraded": {}},
    }
    identical: List[bool] = []
    for query in queries:
        # Fault-free, replication off: the identity every other run —
        # replicated or degraded — must reproduce.
        base, _ = _run_one(
            query, graph,
            _bench_config(
                ranks=ranks, seed=seed, subbuckets=edge_subbuckets, wire=wire,
            ),
            sources,
        )
        want = _invariant_fingerprint(query, base)
        base_seconds = base.fixpoint.modeled_seconds()
        # (1) What do the mirrors cost when nothing fails?
        sweep: List[Dict[str, object]] = []
        for replicas in REPLICA_SWEEP:
            if replicas == 0:
                fp, ok, bytes_ = base.fixpoint, True, 0
            else:
                res, _ = _run_one(
                    query, graph,
                    _bench_config(
                        ranks=ranks, seed=seed, subbuckets=edge_subbuckets,
                        wire=wire, replicas=replicas,
                    ),
                    sources,
                )
                fp = res.fixpoint
                ok = _invariant_fingerprint(query, res) == want
                bytes_ = fp.recovery.replica_bytes
            seconds = fp.modeled_seconds()
            sweep.append({
                "replicas": replicas,
                "modeled_seconds": seconds,
                "replica_bytes": int(bytes_),
                "overhead_pct": (
                    100.0 * (seconds - base_seconds) / base_seconds
                    if base_seconds > 0 else 0.0
                ),
                "identical": ok,
            })
            identical.append(ok)
        report["recovery"]["replication"][query] = sweep
        # (2) Survive the permanent loss, both executors.
        degraded: List[Dict[str, object]] = []
        by_executor: Dict[str, object] = {}
        for replicas in DEGRADED_REPLICAS:
            for executor in ("scalar", "columnar"):
                res, wall = _run_one(
                    query, graph,
                    _bench_config(
                        ranks=ranks, seed=seed, subbuckets=edge_subbuckets,
                        wire=wire, executor=executor, faults=faults,
                        replicas=replicas,
                    ),
                    sources,
                )
                fp = res.fixpoint
                fired = (
                    fp.recovery is not None
                    and fp.recovery.injected.permanent_crashes >= 1
                    and fp.degraded is not None
                )
                ok = fired and _invariant_fingerprint(query, res) == want
                identical.append(ok)
                deg = fp.degraded
                degraded.append({
                    "replicas": replicas,
                    "executor": executor,
                    "modeled_seconds": fp.modeled_seconds(),
                    "crash_fired": fired,
                    "excluded_ranks": list(deg.excluded_ranks) if deg else [],
                    "reowned_shards": deg.reowned_shards if deg else 0,
                    "restored_tuples": deg.restored_tuples if deg else 0,
                    "replica_sources": (
                        [list(p) for p in deg.replica_sources] if deg else []
                    ),
                    "overhead_pct": (
                        100.0 * (fp.modeled_seconds() - base_seconds)
                        / base_seconds if base_seconds > 0 else 0.0
                    ),
                    "identical": ok,
                })
                if replicas == DEGRADED_REPLICAS[0]:
                    by_executor[executor] = (res, wall)
        report["recovery"]["degraded"][query] = degraded
        # Standard per-query sections (the --compare contract) use the
        # replicas=1 degraded runs: the headline "cost of surviving".
        res_s, wall_s = by_executor["scalar"]
        res_c, wall_c = by_executor["columnar"]
        exec_identical = (
            res_s.fixpoint.summary() == res_c.fixpoint.summary()
        )
        identical.append(exec_identical)
        report["queries"][query] = {
            "scalar": _executor_report(res_s.fixpoint, wall_s),
            "columnar": _executor_report(res_c.fixpoint, wall_c),
            "speedup": wall_s / wall_c if wall_c > 0 else float("inf"),
            "identical_results": all(
                d["identical"] for d in degraded
            ),
            "identical_ledger": exec_identical,
        }
    report["all_identical"] = all(identical)
    stamp_bench_snapshot(report)
    return report


def _render_bench(report: Dict[str, object]) -> str:
    """Human-readable table of the degraded-mode benchmark report."""
    rec = report["recovery"]
    crash = report["crash"]
    lines = [
        f"degraded-recovery benchmark — {report['dataset']} "
        f"({report['edges']} edges), {report['ranks']} ranks, "
        f"checkpoint every {report['checkpoint_every']}, permanent loss of "
        f"rank {crash['rank']} at superstep {crash['superstep']}",
        "replication overhead (fault-free):",
        f"{'query':8s} {'replicas':>8s} {'modeled s':>11s} "
        f"{'mirror bytes':>13s} {'overhead':>9s} {'identical':>10s}",
    ]
    for query, sweep in rec["replication"].items():
        for p in sweep:
            lines.append(
                f"{query:8s} {p['replicas']:8d} {p['modeled_seconds']:11.6f} "
                f"{p['replica_bytes']:13d} {p['overhead_pct']:8.2f}% "
                f"{'yes' if p['identical'] else 'NO':>10s}"
            )
    lines.append("permanent-loss matrix (degraded vs fault-free):")
    lines.append(
        f"{'query':8s} {'replicas':>8s} {'executor':>9s} {'modeled s':>11s} "
        f"{'reowned':>8s} {'restored':>9s} {'overhead':>9s} {'identical':>10s}"
    )
    for query, entries in rec["degraded"].items():
        for d in entries:
            lines.append(
                f"{query:8s} {d['replicas']:8d} {d['executor']:>9s} "
                f"{d['modeled_seconds']:11.6f} {d['reowned_shards']:8d} "
                f"{d['restored_tuples']:9d} {d['overhead_pct']:8.2f}% "
                f"{'yes' if d['identical'] else 'NO':>10s}"
            )
    ok = "yes" if report["all_identical"] else "NO"
    lines.append(f"degraded runs identical to fault-free: {ok}")
    return "\n".join(lines)


def render(result) -> str:
    if isinstance(result, dict):
        return _render_bench(result)
    headers = [
        "K", "ckpts", "ckpt s", "recov s", "replayed", "total s",
        "overhead s", "identical",
    ]
    rows = []
    for p in result.points:
        rows.append([
            p.interval,
            p.checkpoints,
            f"{p.checkpoint_seconds:.6f}",
            f"{p.recovery_seconds:.6f}",
            p.replayed_iterations,
            f"{p.total_seconds:.6f}",
            f"{p.overhead_seconds:+.6f}",
            "yes" if p.identical else "NO",
        ])
    table = render_table(
        headers,
        rows,
        title=(
            f"Recovery — {result.query} on {result.n_ranks} ranks, one rank "
            f"crash at superstep {CRASH_SUPERSTEP}, checkpoint interval sweep"
        ),
    )
    verdict = (
        "all recovered runs identical to fault-free baseline"
        if result.all_identical()
        else "MISMATCH: some recovered runs diverged from the baseline"
    )
    return (
        f"{table}\n"
        f"baseline (fault-free): {result.baseline_seconds:.6f}s over "
        f"{result.iterations} iterations\n{verdict}"
    )


if __name__ == "__main__":
    print(render(run_recovery()))
