#!/usr/bin/env python3
"""Extending PARALAGG with custom recursive aggregates (paper Listing 1/2).

Three increasingly custom uses of the aggregation machinery:

1. **Widest path** — needs no new aggregator at all: the bottleneck
   capacity is ``$MAX(min(c, w))``, composing the built-in ``$MAX`` with
   an arithmetic ``min`` in the head expression.
2. **Source-set reachability** — the built-in ``$UNION`` bitset aggregate
   accumulates *which* of the k sources reach each vertex (not just
   whether any does).
3. **A brand-new aggregate** — ``$GCD``.  Greatest common divisor is
   associative, commutative, and idempotent, i.e. a join-semilattice, so
   it is a legal recursive aggregate; we implement it exactly like the
   paper's Listing 2 implements ``$MIN`` and register it for the DSL.
   (Note the pre-mappability discipline: we fold gcd over *edge weights*
   along walks — gcd commutes with itself, so collapsing partial results
   is sound.  Folding gcd over path *lengths* would not be: gcd does not
   commute with ``+``.)

Run:  python examples/custom_aggregate.py
"""

import math

from repro import Engine, EngineConfig, MAX, Program, Rel, UNION, Var, vars_
from repro.core.aggregators import AGGREGATORS, RecursiveAggregator
from repro.lattice.semilattice import Semilattice
from repro.planner.ast import AggTerm, BinOp

# --------------------------------------------------------- 1. widest path

cap, start, wide = Rel("cap"), Rel("start"), Rel("wide")
f, t, m, c, w, n, x, y, v = vars_("f t m c w n x y v")

INF = 10**9
widest = Program(
    rules=[
        wide(n, n, INF) <= start(n),
        # bottleneck of a path = max over paths of (min over its edges)
        wide(f, t, MAX(BinOp("min", c, w))) <= (wide(f, m, c), cap(m, t, w)),
    ],
    edb={"cap": (3, (0,)), "start": (1, (0,))},
)
engine = Engine(widest, EngineConfig(n_ranks=4))
engine.load("cap", [(0, 1, 5), (1, 2, 3), (0, 2, 1), (2, 3, 8)])
engine.load("start", [(0,)])
res = engine.run()
print("widest-path capacities from 0:")
for (src, dst, width) in sorted(res.query("wide")):
    if src != dst:
        print(f"  0 -> {dst}: bottleneck {width}")
assert (0, 2, 3) in res.query("wide")  # via 0-1-2 (min(5,3)=3), not direct (1)

# ------------------------------------------------ 2. source-set reachability

edge, src_rel, reach = Rel("edge"), Rel("source"), Rel("reach")
bit = Var("b")
sources = Program(
    rules=[
        reach(n, UNION(bit)) <= src_rel(n, bit),
        reach(y, UNION(v)) <= (reach(x, v), edge(x, y)),
    ],
    edb={"edge": (2, (0,)), "source": (2, (0,))},
)
engine = Engine(sources, EngineConfig(n_ranks=4))
engine.load("edge", [(0, 2), (1, 2), (2, 3), (1, 4)])
engine.load("source", [(0, 1 << 0), (1, 1 << 1)])  # source i contributes bit i
res = engine.run()
print("\nwhich sources reach each vertex (bitmask):")
for vertex, mask in sorted(res.query("reach")):
    names = [str(i) for i in range(2) if mask & (1 << i)]
    print(f"  vertex {vertex}: sources {{{', '.join(names)}}}")
assert (3, 0b11) in res.query("reach")  # both sources reach 3 via 2

# --------------------------------------------------------- 3. a new $GCD


class GcdLattice(Semilattice):
    """Positive integers ordered by divisibility (join = gcd).

    ``a ≤ b`` iff b divides a: absorbing more path lengths can only move
    the gcd *down the integers*, which is *up* this lattice — and chains
    are finite (divisors shrink), so fixpoints terminate.
    """

    def join(self, a, b):
        return math.gcd(a, b)

    def leq(self, a, b):
        return a % b == 0


class GcdAggregator(RecursiveAggregator):
    """``$GCD`` — exactly Listing 2's shape, for a new lattice."""

    name = "gcd"

    def __init__(self) -> None:
        super().__init__(GcdLattice())


AGGREGATORS["gcd"] = GcdAggregator  # register for the surface syntax

from repro.planner.ast import register_function  # noqa: E402

register_function("gcd", math.gcd)  # usable in head expressions


def GCD(expr):
    return AggTerm("gcd", expr)


# gcd of all edge weights appearing on any walk x -> y.  The recursive
# head folds gcd(accumulated, next edge weight); collapsing partial
# accumulators is sound because gcd is one big idempotent fold.
walk, ledge = Rel("walk"), Rel("ledge")
acc, wgt = Var("g"), Var("wl")
weight_gcd = Program(
    rules=[
        walk(x, y, GCD(wgt)) <= ledge(x, y, wgt),
        walk(x, y, GCD(BinOp("gcd", acc, wgt)))
        <= (walk(x, m, acc), ledge(m, y, wgt)),
    ],
    edb={"ledge": (3, (0,))},
)
engine = Engine(weight_gcd, EngineConfig(n_ranks=4, max_iterations=64))
engine.load(
    "ledge",
    [(0, 1, 6), (1, 2, 10), (0, 2, 9), (2, 3, 15)],
)
res = engine.run()
walks = {(a, b): g for a, b, g in res.query("walk")}
print(f"\n$GCD of edge weights on walks 0->3: {walks[(0, 3)]}")
# walks 0->3: {6,10,15} (gcd 1) and {9,15} (gcd 3); lattice join: gcd(1,3)=1
assert walks[(0, 3)] == 1
assert walks[(0, 2)] == math.gcd(math.gcd(6, 10), 9)  # both 0->2 walks folded
