"""Figure 6 — CC strong scaling (twitter stand-in).

Paper: 96% reduction 256 -> 16,384, with a plateau at the top end where
communication ("Other": sub-bucket rebalancing alltoallv) stops the gains.
"""

from repro.experiments import fig6


def test_fig6_cc_strong_scaling(once, defaults):
    result = once(fig6.run_fig6, defaults)
    print()
    print(fig6.render(result))
    ranks = sorted(result.total)
    assert result.total[ranks[-1]] < result.total[ranks[0]]
    # the comm floor: communication share grows with rank count
    lo_comm = result.phases[ranks[0]].get("comm", 0) + result.phases[ranks[0]].get("intra_bucket", 0)
    hi_comm = result.phases[ranks[-1]].get("comm", 0) + result.phases[ranks[-1]].get("intra_bucket", 0)
    lo_share = lo_comm / result.total[ranks[0]]
    hi_share = hi_comm / result.total[ranks[-1]]
    print(f"comm share: {lo_share:.1%} @ {ranks[0]} -> {hi_share:.1%} @ {ranks[-1]}")
    assert hi_share > lo_share
