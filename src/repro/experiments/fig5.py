"""Figure 5 — SSSP strong scaling on the Twitter stand-in.

Paper: running time drops 96% from 256 to 16,384 cores; near-perfect
scaling until 2,048, then slowing (Δ starvation: only a few thousand new
tuples per iteration spread over many ranks, plus the vote's extra
synchronization), yet still 26% faster from 8,192 → 16,384.  The paper
uses 30 simultaneous source vertices to enlarge the problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.common import (
    ExperimentDefaults,
    defaults_from_env,
    optimized_config,
    render_series,
    scaling_cost_model,
)
from repro.graphs.datasets import load_dataset
from repro.queries.sssp import run_sssp

FULL_RANKS = (256, 512, 1024, 2048, 4096, 8192, 16384)
QUICK_RANKS = (256, 1024, 4096, 16384)


@dataclass
class ScalingResult:
    query: str
    #: total modeled seconds by rank count
    total: Dict[int, float]
    #: per-phase modeled seconds by rank count
    phases: Dict[int, Dict[str, float]]
    iterations: int

    def speedup(self) -> Dict[int, float]:
        base_rank = min(self.total)
        base = self.total[base_rank]
        return {n: base / t for n, t in sorted(self.total.items())}

    def reduction_percent(self) -> float:
        """Paper's headline: % runtime reduction from smallest to largest."""
        lo, hi = min(self.total), max(self.total)
        return 100.0 * (1 - self.total[hi] / self.total[lo])


def run_fig5(
    defaults: Optional[ExperimentDefaults] = None,
    *,
    n_sources: int = 30,
) -> ScalingResult:
    d = defaults or defaults_from_env()
    graph = load_dataset(
        "twitter_like", seed=d.seed, scale_shift=d.scale_shift, max_weight=4
    )
    total: Dict[int, float] = {}
    phases: Dict[int, Dict[str, float]] = {}
    iterations = 0
    for n_ranks in d.ranks(FULL_RANKS, QUICK_RANKS):
        config = optimized_config(n_ranks, cost_model=scaling_cost_model())
        result = run_sssp(graph, list(range(n_sources)), config)
        total[n_ranks] = result.fixpoint.modeled_seconds()
        phases[n_ranks] = result.fixpoint.phase_breakdown()
        iterations = result.iterations
    return ScalingResult(query="sssp", total=total, phases=phases, iterations=iterations)


def render(result: ScalingResult) -> str:
    from repro.metrics.asciiplot import ascii_plot

    series = {
        "total (s)": result.total,
        "speedup": result.speedup(),
    }
    txt = render_series(series, "ranks", f"{result.query} strong scaling")
    plot = ascii_plot(
        {"modeled seconds": result.total},
        logx=True,
        height=10,
        title="",
        y_label="modeled seconds",
    )
    return (
        f"Fig. 5 — SSSP (twitter_like) strong scaling; "
        f"runtime reduction {result.reduction_percent():.0f}% "
        f"(paper: 96%)\n" + txt + "\n" + plot
    )
