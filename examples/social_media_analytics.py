#!/usr/bin/env python3
"""Social-media analytics on the Twitter stand-in (paper §I's motivation).

Runs the paper's two evaluation queries — multi-source SSSP and connected
components — on the power-law ``twitter_like`` graph, and demonstrates
what the two §IV optimizations buy:

* dynamic join planning (Algorithm 1's vote), and
* spatial load balancing (8 sub-buckets on the skewed edge relation),

by running the same query with both off (the paper's Baseline) and both
on (Optimized) and comparing the modeled cluster time and phase breakdown
— a miniature of paper Fig. 2.

Run:  python examples/social_media_analytics.py
"""

import time

from repro.experiments.common import baseline_config, optimized_config
from repro.graphs import load_dataset
from repro.queries import run_cc, run_sssp

graph = load_dataset("twitter_like", scale_shift=2)
print(f"workload: {graph} (degree skew max/mean = {graph.degree_skew():.1f})")

sources = list(range(10))  # the paper designates ten start vertices

for label, config_fn in (("Baseline  (B)", baseline_config),
                         ("Optimized (O)", optimized_config)):
    config = config_fn(n_ranks=128)
    t0 = time.time()
    result = run_sssp(graph, sources, config)
    fp = result.fixpoint
    print(f"\nSSSP {label}: {result.n_paths} paths, "
          f"{result.iterations} iterations, "
          f"modeled {fp.modeled_seconds() * 1000:.2f} ms "
          f"(simulated in {time.time() - t0:.1f}s)")
    for phase, seconds in sorted(fp.phase_breakdown().items()):
        print(f"    {phase:14s} {seconds * 1000:8.3f} ms")

# Connected components compress each community to its min-id member.
config = optimized_config(n_ranks=128)
cc = run_cc(graph, config)
print(f"\nCC: {cc.n_components} components over {len(cc.labels)} "
      f"non-isolated vertices ({cc.iterations} iterations)")
sizes = {}
for _, rep in cc.labels.items():
    sizes[rep] = sizes.get(rep, 0) + 1
largest = max(sizes.values())
print(f"largest component holds {largest}/{len(cc.labels)} vertices "
      f"({100 * largest / len(cc.labels):.1f}% — the usual giant component)")
