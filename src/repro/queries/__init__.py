"""Ready-made declarative queries (the paper's evaluation workloads §V-A).

Every query is expressed through the public DSL (``Program``/``Rel``) and
executed by the standard engine — exactly how a PARALAGG user would write
them — plus a convenience runner that loads a :class:`~repro.graphs.Graph`
and extracts results.

* :mod:`repro.queries.sssp` — single/multi-source shortest paths (``$MIN``)
* :mod:`repro.queries.cc` — connected components (``$MIN`` label propagation)
* :mod:`repro.queries.reachability` — transitive closure & ``$ANY`` reach
* :mod:`repro.queries.lsp` — longest shortest path (stratified ``$MAX``
  over a recursive ``$MIN``, the paper's §III-A example)
* :mod:`repro.queries.pagerank` — fixed-point-arithmetic PageRank via
  iterated stratified ``SUM`` (the standard recursive-aggregate-engine
  formulation)
"""

from repro.queries.sssp import sssp_program, run_sssp, SsspResult
from repro.queries.cc import cc_program, run_cc, CcResult
from repro.queries.reachability import (
    tc_program,
    run_tc,
    reach_program,
    run_reach,
)
from repro.queries.lsp import lsp_program, run_lsp
from repro.queries.pagerank import run_pagerank

__all__ = [
    "sssp_program",
    "run_sssp",
    "SsspResult",
    "cc_program",
    "run_cc",
    "CcResult",
    "tc_program",
    "run_tc",
    "reach_program",
    "run_reach",
    "lsp_program",
    "run_lsp",
    "run_pagerank",
]
