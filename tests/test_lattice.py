"""Property tests: the semilattice laws recursive aggregation relies on."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lattice.semilattice import (
    BoolOrLattice,
    BoundedCountLattice,
    MaxLattice,
    MinLattice,
    Ordering,
    ProductLattice,
    Semilattice,
    SetUnionLattice,
)

INTS = st.integers(min_value=-10**6, max_value=10**6)
SETS = st.frozensets(st.integers(min_value=0, max_value=20), max_size=6)
BOOLS = st.booleans()
COUNTS = st.integers(min_value=0, max_value=100)

LATTICE_CASES = [
    (MinLattice(), INTS),
    (MaxLattice(), INTS),
    (BoolOrLattice(), BOOLS),
    (SetUnionLattice(), SETS),
    (BoundedCountLattice(100), COUNTS),
]


@pytest.mark.parametrize("lattice,strategy", LATTICE_CASES,
                         ids=lambda x: type(x).__name__ if isinstance(x, Semilattice) else "")
class TestSemilatticeLaws:
    @given(data=st.data())
    def test_idempotent(self, lattice, strategy, data):
        a = data.draw(strategy)
        assert lattice.join(a, a) == a

    @given(data=st.data())
    def test_commutative(self, lattice, strategy, data):
        a, b = data.draw(strategy), data.draw(strategy)
        assert lattice.join(a, b) == lattice.join(b, a)

    @given(data=st.data())
    def test_associative(self, lattice, strategy, data):
        a, b, c = (data.draw(strategy) for _ in range(3))
        assert lattice.join(lattice.join(a, b), c) == lattice.join(
            a, lattice.join(b, c)
        )

    @given(data=st.data())
    def test_join_is_upper_bound(self, lattice, strategy, data):
        a, b = data.draw(strategy), data.draw(strategy)
        j = lattice.join(a, b)
        assert lattice.leq(a, j) and lattice.leq(b, j)

    @given(data=st.data())
    def test_leq_consistent_with_join(self, lattice, strategy, data):
        a, b = data.draw(strategy), data.draw(strategy)
        assert lattice.leq(a, b) == (lattice.join(a, b) == b)

    @given(data=st.data())
    def test_compare_matches_leq(self, lattice, strategy, data):
        a, b = data.draw(strategy), data.draw(strategy)
        cmp = lattice.compare(a, b)
        if cmp is Ordering.EQUAL:
            assert a == b or (lattice.leq(a, b) and lattice.leq(b, a))
        elif cmp is Ordering.LESS:
            assert lattice.leq(a, b) and not lattice.leq(b, a)
        elif cmp is Ordering.GREATER:
            assert lattice.leq(b, a) and not lattice.leq(a, b)
        else:
            assert not lattice.leq(a, b) and not lattice.leq(b, a)

    @given(data=st.data())
    def test_bottom_is_identity(self, lattice, strategy, data):
        bottom = lattice.bottom
        if bottom is None:
            return
        a = data.draw(strategy)
        assert lattice.join(bottom, a) == a


class TestSpecificLattices:
    def test_min_lattice_direction(self):
        # "higher" in the MIN lattice means numerically smaller
        lat = MinLattice()
        assert lat.join(3, 5) == 3
        assert lat.leq(5, 3)          # 5 ≤ 3 in lattice order
        assert not lat.leq(3, 5)

    def test_max_lattice_direction(self):
        lat = MaxLattice()
        assert lat.join(3, 5) == 5
        assert lat.leq(3, 5)

    def test_bool_or(self):
        lat = BoolOrLattice()
        assert lat.join(False, True) is True
        assert lat.bottom is False
        assert lat.validate(True) and not lat.validate(1)

    def test_set_union_incomparable(self):
        lat = SetUnionLattice()
        assert lat.compare(frozenset({1}), frozenset({2})) is Ordering.INCOMPARABLE
        assert lat.bottom == frozenset()

    def test_bounded_count_saturates(self):
        lat = BoundedCountLattice(10)
        assert lat.join(8, 15) == 10
        assert lat.bottom == 0
        assert lat.validate(10) and not lat.validate(11)

    def test_bounded_count_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            BoundedCountLattice(0)


class TestProductLattice:
    def setup_method(self):
        self.lat = ProductLattice([MinLattice(), MaxLattice()])

    def test_pointwise_join(self):
        assert self.lat.join((3, 3), (5, 5)) == (3, 5)

    def test_leq_pointwise(self):
        assert self.lat.leq((5, 1), (3, 2))
        assert not self.lat.leq((3, 1), (5, 2))  # first slot went down-lattice

    def test_incomparable(self):
        assert self.lat.compare((1, 1), (2, 2)) is Ordering.INCOMPARABLE

    def test_bottom_none_when_component_unbounded(self):
        assert self.lat.bottom is None
        both = ProductLattice([BoolOrLattice(), BoundedCountLattice(5)])
        assert both.bottom == (False, 0)

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            self.lat.join((1,), (2, 3))

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            ProductLattice([])

    @given(
        st.tuples(INTS, INTS), st.tuples(INTS, INTS), st.tuples(INTS, INTS)
    )
    def test_product_laws(self, a, b, c):
        j = self.lat.join
        assert j(a, a) == a
        assert j(a, b) == j(b, a)
        assert j(j(a, b), c) == j(a, j(b, c))

    def test_validate(self):
        lat = ProductLattice([BoolOrLattice(), BoolOrLattice()])
        assert lat.validate((True, False))
        assert not lat.validate((True,))
        assert not lat.validate([True, False])
