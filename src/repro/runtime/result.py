"""Result objects returned by the engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.comm.ledger import PhaseLedger
from repro.relational.storage import VersionedRelation
from repro.util.timing import PhaseTimer

TupleT = Tuple[int, ...]


@dataclass
class IterationTrace:
    """One fixpoint iteration's record (drives Fig. 7 and vote analysis)."""

    stratum: int
    iteration: int
    #: Modeled seconds by phase for this iteration.
    phase_seconds: Dict[str, float]
    #: New (admitted) tuples this iteration, total across relations.
    admitted: int
    #: Tuples suppressed by fused dedup/aggregation.
    suppressed: int
    #: Per join rule: "left"/"right" — which side was chosen as outer.
    outer_choices: Dict[str, str] = field(default_factory=dict)
    #: Tuples moved during intra-bucket communication.
    intra_bucket_tuples: int = 0
    #: Tuples moved during the materializing all-to-all.
    alltoall_tuples: int = 0


@dataclass
class FixpointResult:
    """Everything a caller needs after :meth:`repro.runtime.Engine.run`."""

    relations: Dict[str, VersionedRelation]
    iterations: int
    ledger: PhaseLedger
    timer: PhaseTimer
    trace: List[IterationTrace]
    counters: Dict[str, int]

    def query(self, name: str) -> Set[TupleT]:
        """Materialize a relation's final contents as a set of tuples."""
        return self.relations[name].as_set()

    def modeled_seconds(self) -> float:
        """Total modeled cluster time (compute max-per-step + comm)."""
        return self.ledger.total_seconds()

    def phase_breakdown(self) -> Dict[str, float]:
        return dict(self.ledger.phase_seconds)

    def wall_seconds(self) -> float:
        """Host wall-clock spent simulating (not a cluster-time claim)."""
        return self.timer.total()
