#!/usr/bin/env python3
"""Quickstart: single-source shortest paths in ~20 lines.

This is the paper's §II-C query, written through the public DSL and run on
a small simulated cluster.  The ``$MIN`` aggregate in the recursive head
is what makes this SSSP rather than "enumerate every path length".

Run:  python examples/quickstart.py
"""

from repro import MIN, Engine, EngineConfig, Program, Rel, vars_

# Relations: edge(src, dst, weight), start(node), spath(src, dst, $MIN dist)
edge, start, spath = Rel("edge"), Rel("start"), Rel("spath")
f, t, m, l, w, n = vars_("f t m l w n")

program = Program(
    rules=[
        spath(n, n, 0) <= start(n),
        spath(f, t, MIN(l + w)) <= (spath(f, m, l), edge(m, t, w)),
    ],
    edb={"edge": (3, (0,)), "start": (1, (0,))},
)

engine = Engine(program, EngineConfig(n_ranks=8))
engine.load(
    "edge",
    [
        # a small weighted digraph
        (0, 1, 4), (0, 2, 9), (1, 2, 1), (2, 3, 2), (3, 1, 1), (1, 4, 7),
        (3, 4, 3),
    ],
)
engine.load("start", [(0,)])

result = engine.run()

print(f"fixpoint reached in {result.iterations} iterations")
for src, dst, dist in sorted(result.query("spath")):
    print(f"  shortest path {src} -> {dst} has length {dist}")

# The engine is honest about distribution: every tuple moved between the
# 8 simulated ranks went through a collective, and the ledger kept score.
comm = result.ledger.comm
print(f"communication: {comm.bytes_total} bytes over {comm.messages} messages")
assert (0, 4, 10) in result.query("spath")  # 0 -> 1 -> 2 -> 3 -> 4
