"""Tests for the local relational-algebra kernels."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.relational.ra import (
    cartesian,
    difference,
    fixpoint,
    join,
    project,
    rename,
    select,
    select_eq,
    semi_naive_step,
    union,
)

R = frozenset({(1, 2), (1, 3), (2, 3)})
S = frozenset({(2, 10), (3, 20), (4, 30)})

RELS = st.frozensets(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12
)


class TestOperators:
    def test_select(self):
        assert select(R, lambda t: t[0] == 1) == {(1, 2), (1, 3)}

    def test_select_eq(self):
        assert select_eq(R, 1, 3) == {(1, 3), (2, 3)}

    def test_project_drops_and_dedups(self):
        assert project(R, (0,)) == {(1,), (2,)}

    def test_project_reorders_and_duplicates(self):
        assert project(frozenset({(1, 2)}), (1, 0, 1)) == {(2, 1, 2)}

    def test_rename_is_permutation(self):
        assert rename(R, (1, 0)) == {(2, 1), (3, 1), (3, 2)}
        with pytest.raises(ValueError):
            rename(R, (0, 0))

    def test_union_and_difference(self):
        assert union(R, {(9, 9)}) == R | {(9, 9)}
        assert difference(R, {(1, 2)}) == R - {(1, 2)}

    def test_union_arity_check(self):
        with pytest.raises(ValueError):
            union(R, {(1, 2, 3)})

    def test_cartesian(self):
        assert cartesian({(1,)}, {(2, 3)}) == {(1, 2, 3)}

    def test_join_basic(self):
        # R(a, b) ⋈ S(b, c) on b
        got = join(R, S, on=[(1, 0)])
        assert got == {(1, 2, 10), (1, 3, 20), (2, 3, 20)}

    def test_join_needs_pairs(self):
        with pytest.raises(ValueError):
            join(R, S, on=[])

    def test_join_multi_column(self):
        a = {(1, 2, 7), (1, 3, 8)}
        b = {(2, 1, 100), (3, 1, 200), (3, 9, 300)}
        got = join(a, b, on=[(0, 1), (1, 0)])
        assert got == {(1, 2, 7, 100), (1, 3, 8, 200)}

    @given(RELS, RELS)
    def test_union_commutative_idempotent(self, a, b):
        assert union(a, b) == union(b, a)
        assert union(a, a) == frozenset(a)

    @given(RELS)
    def test_project_then_rename_roundtrip(self, rel):
        assert rename(rename(rel, (1, 0)), (1, 0)) == frozenset(rel)


class TestFixpoint:
    def test_transitive_closure_matches_engine_semantics(self):
        edge = frozenset({(0, 1), (1, 2), (2, 3)})

        def step(delta, full):
            # Π(x, z)(Δ(x, y) ⋈ Edge(y, z)) — the paper's §II-A plan
            return project(join(delta, edge, on=[(1, 0)]), (0, 2))

        tc = fixpoint(edge, step)
        assert (0, 3) in tc and (0, 2) in tc
        assert len(tc) == 6

    def test_semi_naive_step_returns_delta(self):
        edge = frozenset({(0, 1), (1, 2)})
        full, new = semi_naive_step(
            edge, edge,
            lambda d, f: project(join(d, edge, on=[(1, 0)]), (0, 2)),
        )
        assert new == {(0, 2)}
        assert full == edge | {(0, 2)}

    def test_fixpoint_guard(self):
        grow = lambda d, f: {(t[0] + 1, t[1]) for t in d}
        with pytest.raises(RuntimeError):
            fixpoint({(0, 0)}, grow, max_iterations=10)

    def test_fixpoint_agrees_with_distributed_engine(self):
        from repro import Engine, EngineConfig
        from repro.queries.reachability import tc_program

        edges = [(0, 1), (1, 2), (2, 0), (3, 0)]
        eng = Engine(tc_program(), EngineConfig(n_ranks=4))
        eng.load("edge", edges)
        expected = eng.run().query("path")

        edge_rel = frozenset(edges)
        tc = fixpoint(
            edge_rel,
            lambda d, f: project(join(d, edge_rel, on=[(1, 0)]), (0, 2)),
        )
        assert tc == expected
