"""Declarative query layer: Datalog with recursive aggregates.

PARALAGG "allows the declarative implementation of queries which utilize
recursive aggregates" (paper §I).  This package provides that surface:

* :mod:`repro.planner.ast` — terms, atoms, rules, and a small operator-
  overloaded DSL so SSSP reads like the paper::

      spath = Rel("spath")
      edge, start = Rel("edge"), Rel("start")
      f, t, m, l, n = vars_("f t m l n")
      program = Program(
          rules=[
              spath(n_, n_, 0) <= start(n_),
              spath(f, t, MIN(l + n)) <= (spath(f, m, l), edge(m, t, n)),
          ],
          edb={"edge": ..., "start": ...},
      )

* :mod:`repro.planner.stratify` — relation dependency SCCs → evaluation
  strata (recursive aggregation *within* a stratum, stratified aggregation
  *between* strata — both of §II's flavours).
* :mod:`repro.planner.compile_rules` — positional compilation of rules into
  join/copy kernels: shared-variable analysis, probe-key mappings for either
  join direction (dynamic join planning needs both), head emitters, and the
  static safety check that aggregated columns are never joined upon.
"""

from repro.planner.ast import (
    Var,
    Const,
    Expr,
    BinOp,
    AggTerm,
    Atom,
    Rel,
    Rule,
    Program,
    MIN,
    MAX,
    MCOUNT,
    ANY,
    UNION,
    SUM,
    COUNT,
    vars_,
)
from repro.planner.stratify import Stratum, stratify
from repro.planner.compile_rules import (
    CompiledRule,
    CompiledProgram,
    add_index_copies,
    compile_program,
    decompose_program,
)
from repro.planner.interpreter import interpret
from repro.planner.parser import DatalogSyntaxError, ParsedProgram, parse_program
from repro.planner.pretty import program_to_source, rule_to_source

__all__ = [
    "Var",
    "Const",
    "Expr",
    "BinOp",
    "AggTerm",
    "Atom",
    "Rel",
    "Rule",
    "Program",
    "MIN",
    "MAX",
    "MCOUNT",
    "ANY",
    "UNION",
    "SUM",
    "COUNT",
    "vars_",
    "Stratum",
    "stratify",
    "CompiledRule",
    "CompiledProgram",
    "add_index_copies",
    "compile_program",
    "decompose_program",
    "interpret",
    "DatalogSyntaxError",
    "ParsedProgram",
    "parse_program",
    "program_to_source",
    "rule_to_source",
]
