"""Local relational-algebra kernels over tuple sets (paper §II-A).

The engine's compiled rules fuse these operators into join/copy kernels;
this module provides them *unfused*, as the textbook primitives — the
"set of mathematical primitives which operate over tables of tuples of
some fixed arity".  They serve three purposes:

* a reference point for tests (a compiled rule ≡ a composition of these),
* building blocks for users doing ad-hoc local analysis of engine output,
* documentation of the semantics the distributed kernels implement.

All functions are pure: they take and return ``frozenset`` / ``set`` of
tuples and never mutate inputs.
"""

from __future__ import annotations

from typing import AbstractSet, Callable, Dict, FrozenSet, Iterable, Sequence, Set, Tuple

TupleT = Tuple[int, ...]
Relation = AbstractSet[TupleT]


def _check_arity(rel: Relation, name: str) -> int:
    arities = {len(t) for t in rel}
    if len(arities) > 1:
        raise ValueError(f"{name}: mixed arities {sorted(arities)}")
    return arities.pop() if arities else 0


def select(rel: Relation, predicate: Callable[[TupleT], bool]) -> FrozenSet[TupleT]:
    """σ — keep tuples satisfying ``predicate``."""
    return frozenset(t for t in rel if predicate(t))


def select_eq(rel: Relation, column: int, value: int) -> FrozenSet[TupleT]:
    """σ_{col = value} — the common constant-selection special case."""
    return frozenset(t for t in rel if t[column] == value)


def project(rel: Relation, columns: Sequence[int]) -> FrozenSet[TupleT]:
    """Π — reorder/duplicate/drop columns (set semantics: dedups)."""
    cols = tuple(columns)
    return frozenset(tuple(t[c] for c in cols) for t in rel)


def rename(rel: Relation, permutation: Sequence[int]) -> FrozenSet[TupleT]:
    """ρ — reorder columns by a permutation of ``range(arity)``.

    Unlike :func:`project`, the permutation must be a bijection — renaming
    never loses information (the paper's ``ρ1/0 Edge``).
    """
    perm = tuple(permutation)
    if sorted(perm) != list(range(len(perm))):
        raise ValueError(f"not a permutation: {perm}")
    return frozenset(tuple(t[c] for c in perm) for t in rel)


def union(*rels: Relation) -> FrozenSet[TupleT]:
    """∪ — set union of same-arity relations."""
    out: Set[TupleT] = set()
    arity = None
    for rel in rels:
        a = _check_arity(rel, "union")
        if rel:
            if arity is None:
                arity = a
            elif a != arity:
                raise ValueError(f"union: arity mismatch {arity} vs {a}")
        out |= set(rel)
    return frozenset(out)


def difference(a: Relation, b: Relation) -> FrozenSet[TupleT]:
    """Set difference (used by naive-to-semi-naive delta construction)."""
    return frozenset(set(a) - set(b))


def cartesian(a: Relation, b: Relation) -> FrozenSet[TupleT]:
    """× — concatenating product (small inputs only)."""
    return frozenset(t1 + t2 for t1 in a for t2 in b)


def join(
    a: Relation,
    b: Relation,
    on: Iterable[Tuple[int, int]],
) -> FrozenSet[TupleT]:
    """⋈ — natural join on the given ``(a_col, b_col)`` pairs.

    The output tuple is ``a``'s columns followed by ``b``'s columns *minus*
    the joined b-columns (the usual natural-join projection).  Implemented
    hash-join style, mirroring the engine's bucket-local join: index ``b``
    by its key columns, probe with ``a``.
    """
    pairs = tuple(on)
    if not pairs:
        raise ValueError("join needs at least one column pair (use cartesian)")
    a_cols = tuple(p[0] for p in pairs)
    b_cols = tuple(p[1] for p in pairs)
    index: Dict[TupleT, list] = {}
    drop = set(b_cols)
    for t in b:
        index.setdefault(tuple(t[c] for c in b_cols), []).append(
            tuple(v for i, v in enumerate(t) if i not in drop)
        )
    out: Set[TupleT] = set()
    for t in a:
        key = tuple(t[c] for c in a_cols)
        for rest in index.get(key, ()):
            out.add(t + rest)
    return frozenset(out)


def semi_naive_step(
    full: Relation,
    delta: Relation,
    step: Callable[[Relation, Relation], Relation],
) -> Tuple[FrozenSet[TupleT], FrozenSet[TupleT]]:
    """One semi-naïve iteration: ``new = step(delta, full) - full``.

    Returns ``(full ∪ new, new)`` — the classic recurrence the engine's
    distributed pipeline implements (paper §II-C's plan for Path).
    """
    produced = step(delta, full)
    new = difference(produced, full)
    return union(full, new), new


def fixpoint(
    base: Relation,
    step: Callable[[Relation, Relation], Relation],
    *,
    max_iterations: int = 100_000,
) -> FrozenSet[TupleT]:
    """Iterate :func:`semi_naive_step` from ``base`` until Δ is empty."""
    full: FrozenSet[TupleT] = frozenset(base)
    delta = full
    for _ in range(max_iterations):
        if not delta:
            return full
        full, delta = semi_naive_step(full, delta, step)
    raise RuntimeError(f"no fixpoint within {max_iterations} iterations")
