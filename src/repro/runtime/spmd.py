"""An SPMD engine: the Fig. 1 pipeline as literal rank programs.

The main :class:`~repro.runtime.engine.Engine` is a BSP *driver*: one
Python loop executes every rank's phase, which makes 16,384-rank
simulations tractable.  This module is the architectural ground truth it
stands in for — each rank runs its own asynchronous program against the
mpi4py-style communicator (:mod:`repro.comm.asyncmpi`), seeing **only its
own shards** and whatever arrives through collectives, exactly like the
C++/MPI original:

.. code-block:: text

    every rank, every iteration, every join rule:
        vote   = allreduce(my relation-size comparison)        (Algorithm 1)
        recv   = alltoall(outer tuples bucketed for sub-bucket owners)
        out    = local join against my inner shards
        homes  = alltoall(out bucketed by head placement)
        Δ     += fused dedup/local aggregation of homes
    stop when allreduce(|Δ|) == 0

Tests assert this engine, the BSP engine, and the naive interpreter agree
— which is what justifies using the fast BSP driver for the scaling
studies.  (This engine is for validation and moderate rank counts; it
shares the shard, distribution, and compiled-rule code with the BSP
engine, so there is exactly one implementation of the semantics.)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.comm.asyncmpi import AsyncComm, run_spmd
from repro.comm.wire import decode_rows, encode_rows
from repro.core.local_agg import make_shard, _ShardBase
from repro.planner.ast import Program
from repro.planner.compile_rules import CompiledProgram, CompiledRule, compile_program
from repro.relational.distribution import Distribution
from repro.runtime.config import EngineConfig
from repro.util.hashing import HashSeed

TupleT = Tuple[int, ...]
ShardKey = Tuple[int, int]


class _RankState:
    """One rank's private view: its shards of every relation."""

    def __init__(self, rank: int, compiled: CompiledProgram, config: EngineConfig):
        self.rank = rank
        self.config = config
        seed = HashSeed().derive(config.seed)
        self.dist: Dict[str, Distribution] = {
            name: Distribution(schema, config.n_ranks, seed)
            for name, schema in compiled.schemas.items()
        }
        self.shards: Dict[str, Dict[ShardKey, _ShardBase]] = {
            name: {} for name in compiled.schemas
        }
        self.compiled = compiled

    # ----------------------------------------------------------------- store

    def shard(self, name: str, key: ShardKey) -> _ShardBase:
        shards = self.shards[name]
        s = shards.get(key)
        if s is None:
            s = make_shard(self.compiled.schemas[name], self.config.use_btree)
            shards[key] = s
        return s

    def absorb(self, name: str, tuples: Iterable[TupleT]) -> int:
        dist = self.dist[name]
        admitted = 0
        for t in tuples:
            key = (dist.bucket_of(t), dist.sub_of(t))
            admitted += self.shard(name, key).absorb([t])
        return admitted

    def advance(self, names: Iterable[str]) -> int:
        total = 0
        for name in names:
            for shard in self.shards[name].values():
                total += shard.advance()
        return total

    def size(self, name: str, version: str) -> int:
        return sum(
            s.delta_size() if version == "delta" else s.full_size()
            for s in self.shards[name].values()
        )

    def tuples(self, name: str, version: str) -> List[TupleT]:
        out: List[TupleT] = []
        for key in sorted(self.shards[name]):
            shard = self.shards[name][key]
            out.extend(
                shard.iter_delta() if version == "delta" else shard.iter_full()
            )
        return out

    def inner_indexes(self, name: str, bucket: int, version: str) -> List[dict]:
        dist = self.dist[name]
        schema = self.compiled.schemas[name]
        out = []
        for s in range(schema.n_subbuckets):
            if dist.owner(bucket, s) == self.rank:
                shard = self.shards[name].get((bucket, s))
                if shard is not None:
                    out.append(shard.delta if version == "delta" else shard.full)
        return out

    def install_delta(self, name: str, tuples: Iterable[TupleT]) -> int:
        """Replace this rank's Δ of ``name`` with the given local tuples.

        Mirrors :meth:`repro.relational.storage.VersionedRelation.install_delta`
        for the SPMD store: every existing shard's Δ is cleared, then the
        rows are regrouped by (bucket, sub) and installed sorted — the
        caller passes tuples this rank already owns, so no communication
        happens here.
        """
        schema = self.compiled.schemas[name]
        empty = np.empty((0, schema.arity), dtype=np.int64)
        for shard in self.shards[name].values():
            shard.install_delta(empty)
        dist = self.dist[name]
        by_key: Dict[ShardKey, List[TupleT]] = {}
        for t in tuples:
            by_key.setdefault((dist.bucket_of(t), dist.sub_of(t)), []).append(t)
        total = 0
        for key in sorted(by_key):
            rows = np.asarray(sorted(by_key[key]), dtype=np.int64)
            total += self.shard(name, key).install_delta(rows)
        return total


async def _eval_direction(
    comm: AsyncComm,
    state: _RankState,
    cr: CompiledRule,
    delta_atom: Optional[int],
) -> None:
    size = comm.Get_size()
    if not cr.is_join:
        version = "delta" if delta_atom == 0 else "full"
        match = cr.matches[0]
        emitted = [
            cr.emit(t, ())
            for t in state.tuples(cr.body_names[0], version)
            if match is None or match(t)
        ]
        await _route_and_absorb(comm, state, cr.head_name, emitted)
        return

    lver = "delta" if delta_atom == 0 else "full"
    rver = "delta" if delta_atom == 1 else "full"
    lname, rname = cr.body_names
    # ---- Algorithm 1: one-word vote; ties on empty ranks abstain when
    # configured, encoded as (vote, participating) pairs.
    lsize, rsize = state.size(lname, lver), state.size(rname, rver)
    if state.config.dynamic_join:
        participating = 1 if (lsize or rsize or not state.config.vote_abstain_empty) else 0
        pair = (participating * (1 if lsize >= rsize else 0), participating)
        votes, voters = await comm.allreduce(
            pair, op=lambda a, b: (a[0] + b[0], a[1] + b[1])
        )
        threshold = (max(voters, 1) + 1) // 2
        outer_is_left = not (votes >= threshold)
    else:
        outer_is_left = state.config.static_outer == "left"

    if outer_is_left:
        outer_name, outer_ver, inner_name, inner_ver = lname, lver, rname, rver
        probe_get = cr.probe_get_left
        outer_match, inner_match = cr.matches[0], cr.matches[1]
    else:
        outer_name, outer_ver, inner_name, inner_ver = rname, rver, lname, lver
        probe_get = cr.probe_get_right
        outer_match, inner_match = cr.matches[1], cr.matches[0]
    inner_dist = state.dist[inner_name]
    n_sub = state.compiled.schemas[inner_name].n_subbuckets

    # ---- intra-bucket exchange: replicate outer tuples to the inner
    # bucket's sub-bucket owners.
    sends: List[List[Tuple[int, TupleT]]] = [[] for _ in range(size)]
    for t in state.tuples(outer_name, outer_ver):
        if outer_match is not None and not outer_match(t):
            continue
        jk = probe_get(t)
        b = inner_dist.bucket_of_key(jk)
        for dst in dict.fromkeys(inner_dist.owner(b, s) for s in range(n_sub)):
            sends[dst].append((b, t))
    received = await comm.alltoall(sends)

    # ---- local join against this rank's inner shards.
    emit = cr.emit
    emitted: List[TupleT] = []
    for batch in received:
        for b, t in batch:
            indexes = state.inner_indexes(inner_name, b, inner_ver)
            if not indexes:
                continue
            jk = probe_get(t)
            for index in indexes:
                group = index.get(jk)
                if not group:
                    continue
                for inner_t in group.values():
                    if inner_match is not None and not inner_match(inner_t):
                        continue
                    emitted.append(
                        emit(t, inner_t) if outer_is_left else emit(inner_t, t)
                    )
    await _route_and_absorb(comm, state, cr.head_name, emitted)


async def _route_and_absorb(
    comm: AsyncComm, state: _RankState, head_name: str, emitted: List[TupleT]
) -> None:
    size = comm.Get_size()
    dist = state.dist[head_name]
    sends: List[List[TupleT]] = [[] for _ in range(size)]
    for t in emitted:
        sends[dist.rank_of(t)].append(t)
    wire = state.config.wire
    if not wire.enabled:
        received = await comm.alltoall(sends)
        for batch in received:
            state.absorb(head_name, batch)
        return

    # Wire layer (mirrors the BSP engine): fold duplicates per
    # independent key where the aggregate lattice allows, ship compact
    # encoded payloads, and let the modeled collective autotune.
    from repro.kernels.absorb import combine_block, vector_combiner

    schema = state.compiled.schemas[head_name]
    if schema.is_aggregate:
        comb = vector_combiner(schema.aggregator)
        can_combine = comb is not None and comb.combinable
    else:
        comb, can_combine = None, True
    combine = wire.sender_combine and can_combine
    packed: List[Tuple[int, bytes]] = []
    for batch in sends:
        if not batch:
            packed.append((0, b""))
            continue
        rows = np.asarray(batch, dtype=np.int64)
        if combine and rows.shape[0] > 1:
            rows = combine_block(rows, schema.n_indep, comb)
        packed.append((int(rows.shape[0]), encode_rows(rows, wire.codec)))
    received_packed = await comm.alltoall(packed, collective=wire.alltoallv)
    for n_rows, payload in received_packed:
        if n_rows:
            rows = decode_rows(payload, n_rows, schema.arity, wire.codec)
            state.absorb(head_name, [tuple(t) for t in rows.tolist()])


async def _recursive_loop(comm, state, stratum, rules, changed) -> None:
    """Drain one recursive stratum to quiescence (shared cold/incremental)."""
    config = state.config
    iterations = 0
    while changed and iterations < config.max_iterations:
        iterations += 1
        for cr in rules:
            for i, rel_name in enumerate(cr.body_names):
                if rel_name in stratum.relations:
                    await _eval_direction(comm, state, cr, delta_atom=i)
        local_new = state.advance(stratum.relations)
        changed = await comm.allreduce(local_new)
    if changed:
        raise RuntimeError(
            f"stratum {stratum.relations} did not converge on rank "
            f"{comm.Get_rank()}"
        )


async def _cold_fixpoint(comm, state, compiled) -> None:
    """Run every stratum from the currently loaded EDB to fixpoint."""
    for stratum in compiled.strata:
        rules = compiled.rules_of(stratum)
        for cr in rules:
            await _eval_direction(comm, state, cr, delta_atom=None)
        local_new = state.advance(stratum.relations)
        changed = await comm.allreduce(local_new)
        if stratum.recursive:
            await _recursive_loop(comm, state, stratum, rules, changed)


async def _seed_update_spmd(
    comm: AsyncComm,
    state: _RankState,
    batch_parts: Mapping[str, List[TupleT]],
) -> Dict[str, int]:
    """Route this rank's slice of an update batch to the owning ranks.

    Each rank holds an arbitrary slice of the batch (tuples arrive
    wherever the client connected); one alltoall per relation delivers
    every tuple to its bucket/sub-bucket owner, which absorbs it against
    the retained full version.  Returns the *global* admitted-Δ size per
    relation (allreduced, so every rank sees the same pending set).
    """
    size = comm.Get_size()
    seeded: Dict[str, int] = {}
    for name in sorted(batch_parts):
        dist = state.dist[name]
        sends: List[List[TupleT]] = [[] for _ in range(size)]
        for t in batch_parts[name]:
            sends[dist.rank_of(tuple(t))].append(tuple(t))
        received = await comm.alltoall(sends)
        for batch in received:
            state.absorb(name, sorted(batch))
        state.advance([name])
        seeded[name] = await comm.allreduce(state.size(name, "delta"))
    return seeded


async def _check_improvements_spmd(
    comm: AsyncComm,
    state: _RankState,
    names: Iterable[str],
    baselines: Mapping[str, Set[TupleT]],
) -> None:
    """Collectively abort if any rank's Δ improved a watched group.

    The check is local (full placement never moves mid-update), but the
    verdict must be symmetric — an allgather shares each rank's finding
    so every rank raises the identical error.
    """
    detail = ""
    for name in sorted(names):
        schema = state.compiled.schemas[name]
        n = schema.n_indep
        keys = baselines[name]
        for t in state.tuples(name, "delta"):
            if t[:n] in keys:
                detail = (
                    f"update improved existing group {t[:n]} of aggregate "
                    f"relation {name!r}, which is read outside its own "
                    "stratum — downstream tuples derived from the old "
                    "value cannot be retracted by insertion-only "
                    "maintenance"
                )
                break
        if detail:
            break
    found = await comm.allgather(detail)
    for msg in found:
        if msg:
            from repro.runtime.incremental import IncrementalUnsupportedError

            raise IncrementalUnsupportedError(msg)


async def _apply_update_spmd(
    comm: AsyncComm,
    state: _RankState,
    compiled: CompiledProgram,
    batch_parts: Mapping[str, List[TupleT]],
    watch: Set[str],
) -> None:
    """One incremental update batch: seed, resume strata, clear Δ."""
    baselines: Dict[str, Set[TupleT]] = {}
    for name in sorted(watch):
        n = compiled.schemas[name].n_indep
        baselines[name] = {t[:n] for t in state.tuples(name, "full")}

    seeded = await _seed_update_spmd(comm, state, batch_parts)
    await _check_improvements_spmd(
        comm, state, set(seeded) & watch, baselines
    )
    pending = {n for n, c in seeded.items() if c}
    touched = set(batch_parts)

    for stratum in compiled.strata:
        rules = compiled.rules_of(stratum)
        relevant = [
            (cr, [i for i, n in enumerate(cr.body_names) if n in pending])
            for cr in rules
        ]
        relevant = [(cr, idxs) for cr, idxs in relevant if idxs]
        if not relevant:
            continue
        if stratum.recursive:
            before = {
                name: set(state.tuples(name, "full"))
                for name in stratum.relations
            }
        for cr, idxs in relevant:
            for i in idxs:
                await _eval_direction(comm, state, cr, delta_atom=i)
        local_new = state.advance(stratum.relations)
        changed_count = await comm.allreduce(local_new)
        changed_names: Set[str] = set()
        if stratum.recursive:
            await _recursive_loop(comm, state, stratum, rules, changed_count)
            # Downstream Δ = final full-version growth, never the
            # transient Δs the loop burned through (paper §III-A).
            for name in stratum.relations:
                diff = set(state.tuples(name, "full")) - before[name]
                n_global = await comm.allreduce(
                    state.install_delta(name, diff)
                )
                if n_global:
                    changed_names.add(name)
        else:
            for name in sorted({cr.head_name for cr, _ in relevant}):
                if await comm.allreduce(state.size(name, "delta")):
                    changed_names.add(name)
        await _check_improvements_spmd(
            comm, state, changed_names & watch, baselines
        )
        pending |= changed_names
        touched |= changed_names

    for name in sorted(touched):
        state.install_delta(name, ())


async def _rank_program(
    comm: AsyncComm,
    program: Program,
    config: EngineConfig,
    facts_by_rank: Mapping[str, List[List[TupleT]]],
    updates_by_rank: Sequence[Mapping[str, List[List[TupleT]]]] = (),
) -> Dict[str, Set[TupleT]]:
    compiled = compile_program(
        program,
        subbuckets=config.subbuckets,
        default_subbuckets=config.default_subbuckets,
    )
    state = _RankState(comm.Get_rank(), compiled, config)
    for name, parts in facts_by_rank.items():
        state.absorb(name, parts[comm.Get_rank()])
        state.advance([name])

    await _cold_fixpoint(comm, state, compiled)

    if updates_by_rank:
        from repro.runtime.incremental import improvable_watch

        watch = improvable_watch(compiled)
        for batch in updates_by_rank:
            parts = {
                name: rows[comm.Get_rank()] for name, rows in batch.items()
            }
            await _apply_update_spmd(comm, state, compiled, parts, watch)

    return {
        name: set(state.tuples(name, "full")) for name in compiled.schemas
    }


def run_spmd_engine(
    program: Program,
    facts: Mapping[str, Iterable[TupleT]],
    config: Optional[EngineConfig] = None,
) -> Dict[str, Set[TupleT]]:
    """Evaluate ``program`` with true per-rank message-passing programs.

    Returns each relation's full contents (the union across ranks).
    Intended for validation and small/medium rank counts; for scaling
    studies use :class:`~repro.runtime.engine.Engine`.
    """
    return run_spmd_incremental(program, facts, (), config)


def run_spmd_incremental(
    program: Program,
    facts: Mapping[str, Iterable[TupleT]],
    updates: Sequence[Mapping[str, Iterable[TupleT]]],
    config: Optional[EngineConfig] = None,
) -> Dict[str, Set[TupleT]]:
    """Converge on ``facts``, then apply each update batch incrementally.

    The per-rank asynchronous twin of
    :class:`~repro.runtime.incremental.FixpointHandle`: every rank keeps
    its shards live after convergence, ingests its arbitrary slice of
    each update batch (round-robin, modeling clients connected to random
    ranks), alltoall-routes the tuples to their owners, and resumes the
    semi-naïve loop until quiescent — raising the same
    :class:`~repro.runtime.incremental.IncrementalUnsupportedError` on
    every rank for unsupported programs or batches.  Returns each
    relation's final full contents (union across ranks), bit-identical
    to :func:`run_spmd_engine` on the union EDB.
    """
    from repro.runtime.incremental import check_batch_supported, check_program_supported

    config = config or EngineConfig()
    compiled = compile_program(
        program,
        subbuckets=config.subbuckets,
        default_subbuckets=config.default_subbuckets,
    )
    if updates:
        check_program_supported(compiled)
    seed = HashSeed().derive(config.seed)
    # Pre-partition the input facts exactly as a parallel loader would.
    facts_by_rank: Dict[str, List[List[TupleT]]] = {}
    for name, rows in facts.items():
        if name not in compiled.schemas:
            raise KeyError(f"unknown relation {name!r}")
        dist = Distribution(compiled.schemas[name], config.n_ranks, seed)
        parts: List[List[TupleT]] = [[] for _ in range(config.n_ranks)]
        for t in rows:
            parts[dist.rank_of(tuple(t))].append(tuple(t))
        facts_by_rank[name] = parts

    # Update batches are sliced round-robin — tuples arrive at whichever
    # rank the client happened to reach; the seed exchange moves them to
    # their owners.
    edb_names = {d.name for d in compiled.program.edb}
    updates_by_rank: List[Dict[str, List[List[TupleT]]]] = []
    for batch in updates:
        unknown = sorted(set(batch) - edb_names)
        if unknown:
            raise KeyError(
                f"update batch names non-EDB relations {unknown}; "
                f"EDB relations: {sorted(edb_names)}"
            )
        check_batch_supported(compiled, batch.keys())
        by_rank: Dict[str, List[List[TupleT]]] = {}
        for name, rows in batch.items():
            tuples = sorted(tuple(t) for t in rows)
            by_rank[name] = [
                tuples[r :: config.n_ranks] for r in range(config.n_ranks)
            ]
        updates_by_rank.append(by_rank)

    results = run_spmd(
        config.n_ranks,
        _rank_program,
        program,
        config,
        facts_by_rank,
        updates_by_rank,
    )
    merged: Dict[str, Set[TupleT]] = {}
    for per_rank in results:
        for name, tuples in per_rank.items():
            merged.setdefault(name, set()).update(tuples)
    return merged
