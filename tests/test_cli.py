"""CLI tests (argument parsing and end-to-end command paths)."""

import pytest

from repro.cli import main


class TestDatasets:
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "twitter_like" in out and "stokes" in out


class TestRun:
    def test_sssp(self, capsys):
        rc = main([
            "run", "sssp", "--dataset", "topcats", "--ranks", "8",
            "--scale-shift", "3", "--sources", "0,1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shortest paths" in out
        assert "modeled cluster time" in out

    def test_cc(self, capsys):
        rc = main([
            "run", "cc", "--dataset", "flickr", "--ranks", "8",
            "--scale-shift", "4",
        ])
        assert rc == 0
        assert "components" in capsys.readouterr().out

    def test_no_dynamic_join_flag(self, capsys):
        rc = main([
            "run", "sssp", "--dataset", "topcats", "--ranks", "4",
            "--scale-shift", "4", "--no-dynamic-join",
        ])
        assert rc == 0

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            main(["run", "sssp", "--dataset", "missing"])

    def test_unknown_query_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "pagerank"])


class TestExperiment:
    def test_fig3(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE_SHIFT", "4")
        rc = main(["experiment", "fig3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out and "regenerated" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_scale_shift_flag(self, capsys):
        rc = main(["experiment", "fig3", "--scale-shift", "4"])
        assert rc == 0


class TestQuerySpmd:
    def test_spmd_flag_matches_bsp(self, capsys, tmp_path):
        from repro.cli import main

        src = tmp_path / "prog.dl"
        src.write_text(
            ".decl e(x, y, w) keys(x)\n"
            "start(0).\n"
            ".decl start(n) keys(n)\n"
            "e(0, 1, 2). e(1, 2, 3).\n"
            "spath(n, n, 0) :- start(n).\n"
            "spath(f, t, $min(l + w)) :- spath(f, m, l), e(m, t, w).\n"
            ".output spath\n"
        )
        assert main(["query", str(src), "--ranks", "3"]) == 0
        bsp_out = capsys.readouterr().out
        assert main(["query", str(src), "--ranks", "3", "--spmd"]) == 0
        spmd_out = capsys.readouterr().out
        bsp_tuples = [l for l in bsp_out.splitlines() if l.startswith("  spath")]
        spmd_tuples = [l for l in spmd_out.splitlines() if l.startswith("  spath")]
        assert bsp_tuples == spmd_tuples
        assert "SPMD engine" in spmd_out
