"""Chaos-schedule tests: every faulty run must be bit-for-bit the
fault-free run — results, counters and per-rank relation contents — and
injected corruption must always be detected, never silently absorbed."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultConfig, RankFailure, UnrecoverableRankLoss
from repro.queries.cc import run_cc
from repro.queries.pagerank import run_pagerank
from repro.queries.sssp import run_sssp
from repro.runtime.config import EngineConfig

EXECUTORS = ("scalar", "columnar")

#: Seeded fault schedules for the chaos matrix (message faults only).
CHAOS = {
    "drop": FaultConfig(seed=11, drop=0.05),
    "dup": FaultConfig(seed=12, dup=0.08),
    "corrupt": FaultConfig(seed=13, corrupt=0.05),
    "mixed": FaultConfig(seed=14, drop=0.03, dup=0.04, corrupt=0.03),
    "flaky-link": FaultConfig(seed=15, per_edge={(0, 1): (0.6, 0.2, 0.4)}),
}

CRASH = FaultConfig(seed=21, crash_rank=1, crash_superstep=12)

#: Permanent loss of rank 1 mid-run: no restart, the run must finish
#: elastically on the surviving ranks.
PERM = FaultConfig(seed=31, crash_perm_rank=1, crash_perm_superstep=12)


def _cfg(executor, faults=None, checkpoint_every=None, n_ranks=4,
         replicas=0, delta_fingerprints=False):
    return EngineConfig(
        n_ranks=n_ranks,
        executor=executor,
        faults=faults,
        checkpoint_every=checkpoint_every,
        replicas=replicas,
        delta_fingerprints=delta_fingerprints,
    )


def _invariant_fingerprint(fp, rel):
    """What degraded-mode recovery must preserve: the answers, the exact
    per-iteration Δ content, and the iteration count.  Deliberately NOT
    counters or per-rank sizes — the shrunken world legitimately places
    (and votes on) tuples differently; the *outputs* may not differ."""
    return (
        fp.query(rel),
        [t.delta_fingerprints for t in fp.trace],
        fp.iterations,
    )


def _fingerprint(fp, rel):
    return (
        fp.query(rel),
        dict(sorted(fp.counters.items())),
        {
            name: r.full_sizes_by_rank().tolist()
            for name, r in sorted(fp.relations.items())
        },
        fp.iterations,
    )


class TestChaosMatrix:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("fault", sorted(CHAOS))
    def test_sssp_identical_under_message_faults(
        self, medium_weighted_graph, executor, fault
    ):
        sources = list(range(10))
        base = run_sssp(
            medium_weighted_graph, sources, _cfg(executor)
        ).fixpoint
        faulty = run_sssp(
            medium_weighted_graph, sources, _cfg(executor, CHAOS[fault])
        ).fixpoint
        assert faulty.query("spath") == base.query("spath")
        assert faulty.iterations == base.iterations
        if CHAOS[fault].dup == 0 and CHAOS[fault].rates_for(0, 1)[1] == 0:
            # Without duplicates even the suppression counters match;
            # duplicates legitimately inflate received/suppressed.
            assert dict(faulty.counters) == dict(base.counters)
        else:
            assert faulty.counters["admitted"] == base.counters["admitted"]
        inj = faulty.recovery.injected
        assert inj.drops or inj.dups or inj.corruptions, (
            "chaos schedule injected nothing — rates or seed too weak"
        )
        # Every injected corruption was caught by the CRC envelope.
        assert inj.detected_corruptions == inj.corruptions

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("fault", ["drop", "mixed"])
    def test_cc_identical_under_message_faults(
        self, medium_graph, executor, fault
    ):
        base = run_cc(medium_graph, _cfg(executor)).fixpoint
        faulty = run_cc(medium_graph, _cfg(executor, CHAOS[fault])).fixpoint
        assert faulty.query("cc") == base.query("cc")
        assert faulty.counters["admitted"] == base.counters["admitted"]


class TestChaosWireMatrix:
    """PR 7 extension of the chaos matrix: the combined/encoded wire path
    under injected faults must still produce results bit-identical to a
    fault-free run with the wire layer *off* — faults, retransmission and
    the wire optimizations compose without touching semantics."""

    @pytest.mark.parametrize("codec", ("raw", "delta", "dict"))
    @pytest.mark.parametrize("fault", ["drop", "dup", "corrupt", "mixed"])
    def test_sssp_wire_on_faulty_vs_wire_off_clean(
        self, medium_weighted_graph, fault, codec
    ):
        from repro.comm.wire import WireConfig

        sources = list(range(10))
        clean_off = run_sssp(
            medium_weighted_graph, sources,
            EngineConfig(n_ranks=4, executor="columnar",
                         wire=WireConfig.off()),
        ).fixpoint
        faulty_on = run_sssp(
            medium_weighted_graph, sources,
            EngineConfig(n_ranks=4, executor="columnar",
                         faults=CHAOS[fault],
                         wire=WireConfig(codec=codec)),
        ).fixpoint
        assert faulty_on.query("spath") == clean_off.query("spath")
        assert faulty_on.iterations == clean_off.iterations
        assert {
            name: r.full_sizes_by_rank().tolist()
            for name, r in sorted(faulty_on.relations.items())
        } == {
            name: r.full_sizes_by_rank().tolist()
            for name, r in sorted(clean_off.relations.items())
        }
        inj = faulty_on.recovery.injected
        assert inj.drops or inj.dups or inj.corruptions
        assert inj.detected_corruptions == inj.corruptions

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_crash_replay_over_combined_wire(
        self, medium_weighted_graph, executor
    ):
        """Checkpoint/rollback/replay must be oblivious to the wire layer:
        a crash recovery over combined+encoded exchanges ends bit-identical
        to the fault-free wire-on run, including the wire byte tallies."""
        sources = list(range(10))
        base = run_sssp(
            medium_weighted_graph, sources, _cfg(executor)
        ).fixpoint
        faulty = run_sssp(
            medium_weighted_graph, sources,
            _cfg(executor, CRASH, checkpoint_every=2),
        ).fixpoint
        assert _fingerprint(faulty, "spath") == _fingerprint(base, "spath")
        assert (
            faulty.counters["wire_on_wire_bytes"]
            == base.counters["wire_on_wire_bytes"]
        )
        assert (
            faulty.counters["wire_precombine_bytes"]
            == base.counters["wire_precombine_bytes"]
        )


class TestCrashRecovery:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_sssp_recovers_bit_for_bit(self, medium_weighted_graph, executor):
        sources = list(range(10))
        base = run_sssp(
            medium_weighted_graph, sources, _cfg(executor)
        ).fixpoint
        faulty = run_sssp(
            medium_weighted_graph, sources,
            _cfg(executor, CRASH, checkpoint_every=2),
        ).fixpoint
        assert _fingerprint(faulty, "spath") == _fingerprint(base, "spath")
        rec = faulty.recovery
        assert rec.injected.crashes == 1
        assert rec.failures == 1 and rec.recoveries == 1
        assert rec.checkpoints >= 1
        assert rec.rolled_back_iterations >= 0
        # Recovery work is charged to the modeled ledger, not free.
        assert faulty.ledger.phase_seconds.get("recovery", 0) > 0
        assert faulty.ledger.phase_seconds.get("checkpoint", 0) > 0
        assert faulty.modeled_seconds() > base.modeled_seconds()

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_cc_recovers_bit_for_bit(self, medium_graph, executor):
        base = run_cc(medium_graph, _cfg(executor)).fixpoint
        faulty = run_cc(
            medium_graph, _cfg(executor, CRASH, checkpoint_every=2)
        ).fixpoint
        assert _fingerprint(faulty, "cc") == _fingerprint(base, "cc")
        assert faulty.recovery.recoveries == 1

    def test_pagerank_recovers_identically(self, medium_graph):
        base = run_pagerank(medium_graph, iterations=3, config=_cfg("columnar"))
        faulty = run_pagerank(
            medium_graph, iterations=3,
            config=_cfg("columnar", FaultConfig(seed=22, crash_rank=1,
                                                crash_superstep=4),
                        checkpoint_every=1),
        )
        assert np.array_equal(base, faulty)

    def test_crash_without_checkpoint_raises(self, medium_weighted_graph):
        with pytest.raises(RankFailure):
            run_sssp(
                medium_weighted_graph, list(range(10)),
                _cfg("columnar", CRASH),
            )

    def test_crash_with_message_faults_combined(self, medium_weighted_graph):
        sources = list(range(10))
        base = run_sssp(
            medium_weighted_graph, sources, _cfg("columnar")
        ).fixpoint
        combined = FaultConfig(
            seed=23, drop=0.02, corrupt=0.02, crash_rank=2, crash_superstep=10
        )
        faulty = run_sssp(
            medium_weighted_graph, sources,
            _cfg("columnar", combined, checkpoint_every=2),
        ).fixpoint
        assert faulty.query("spath") == base.query("spath")
        assert faulty.recovery.recoveries == 1


class TestIdempotence:
    @given(seed=st.integers(0, 2**16), dup=st.floats(0.01, 0.4))
    @settings(max_examples=15)
    def test_duplicated_deliveries_never_change_aggregates(self, seed, dup):
        """Replayed/duplicated messages are lattice no-ops (the property
        the recovery protocol rests on)."""
        from repro.graphs.types import Graph

        edges = np.array(
            [(0, 1, 4), (0, 2, 9), (1, 2, 1), (2, 3, 2),
             (3, 1, 1), (1, 4, 7), (3, 4, 3), (5, 6, 1)],
            dtype=np.int64,
        )
        graph = Graph(edges=edges, n_nodes=7, name="fixture")
        base = run_sssp(graph, [0, 5], _cfg("columnar")).fixpoint
        faulty = run_sssp(
            graph, [0, 5],
            _cfg("columnar", FaultConfig(seed=seed, dup=dup)),
        ).fixpoint
        assert faulty.query("spath") == base.query("spath")
        assert faulty.counters["admitted"] == base.counters["admitted"]


class TestFaultFreeInvariance:
    def test_plane_absent_ledger_untouched(self, medium_weighted_graph):
        sources = list(range(5))
        a = run_sssp(medium_weighted_graph, sources, _cfg("columnar")).fixpoint
        b = run_sssp(medium_weighted_graph, sources, _cfg("columnar")).fixpoint
        assert a.summary() == b.summary()
        assert a.recovery is None

    def test_inert_plane_ledger_untouched(self, medium_weighted_graph):
        """An all-zero fault config must not perturb modeled totals."""
        sources = list(range(5))
        base = run_sssp(medium_weighted_graph, sources, _cfg("columnar")).fixpoint
        inert = run_sssp(
            medium_weighted_graph, sources,
            _cfg("columnar", FaultConfig(audit_monotonicity=False)),
        ).fixpoint
        assert inert.summary() == base.summary()

    def test_straggler_changes_time_not_results(self, medium_weighted_graph):
        sources = list(range(5))
        base = run_sssp(medium_weighted_graph, sources, _cfg("columnar")).fixpoint
        slow = run_sssp(
            medium_weighted_graph, sources,
            _cfg("columnar", FaultConfig(stragglers={1: 4.0})),
        ).fixpoint
        assert slow.query("spath") == base.query("spath")
        assert dict(slow.counters) == dict(base.counters)
        assert slow.modeled_seconds() > base.modeled_seconds()


class TestCheckpointAccounting:
    def test_checkpoints_without_faults(self, medium_weighted_graph):
        """Checkpointing alone (no plane) works and charges the ledger."""
        sources = list(range(5))
        base = run_sssp(medium_weighted_graph, sources, _cfg("columnar")).fixpoint
        ck = run_sssp(
            medium_weighted_graph, sources,
            _cfg("columnar", checkpoint_every=2),
        ).fixpoint
        assert ck.query("spath") == base.query("spath")
        assert ck.recovery is not None
        assert ck.recovery.checkpoints >= 2
        assert ck.recovery.failures == 0
        assert ck.ledger.phase_seconds.get("checkpoint", 0) > 0

    def test_interval_controls_checkpoint_count(self, medium_weighted_graph):
        sources = list(range(5))
        every_1 = run_sssp(
            medium_weighted_graph, sources,
            _cfg("columnar", checkpoint_every=1),
        ).fixpoint
        every_4 = run_sssp(
            medium_weighted_graph, sources,
            _cfg("columnar", checkpoint_every=4),
        ).fixpoint
        assert every_1.recovery.checkpoints > every_4.recovery.checkpoints

    def test_recovery_stats_in_report(self, medium_weighted_graph):
        faulty = run_sssp(
            medium_weighted_graph, list(range(10)),
            _cfg("columnar", CRASH, checkpoint_every=2),
        ).fixpoint
        d = faulty.recovery.as_dict()
        assert d["failures"] == 1
        assert d["injected"]["crashes"] == 1
        assert faulty.metrics_dict()


class TestReplication:
    """Checkpoint replication without any fault: pure overhead, zero
    semantic effect."""

    def test_replication_is_invariant_and_charged(self, medium_weighted_graph):
        sources = list(range(5))
        plain = run_sssp(
            medium_weighted_graph, sources,
            _cfg("columnar", checkpoint_every=2),
        ).fixpoint
        mirrored = run_sssp(
            medium_weighted_graph, sources,
            _cfg("columnar", checkpoint_every=2, replicas=2),
        ).fixpoint
        assert mirrored.query("spath") == plain.query("spath")
        assert dict(mirrored.counters) == dict(plain.counters)
        assert mirrored.iterations == plain.iterations
        rec = mirrored.recovery
        assert rec.replica_bytes > 0 and rec.replica_seconds > 0
        assert plain.recovery.replica_bytes == 0
        assert mirrored.ledger.comm.by_kind.get("replica", 0) > 0
        assert mirrored.modeled_seconds() > plain.modeled_seconds()

    def test_replica_bytes_scale_with_factor(self, medium_weighted_graph):
        sources = list(range(5))
        runs = {
            r: run_sssp(
                medium_weighted_graph, sources,
                _cfg("columnar", checkpoint_every=2, replicas=r),
            ).fixpoint.recovery.replica_bytes
            for r in (1, 2, 3)
        }
        assert runs[1] > 0
        assert runs[2] == 2 * runs[1]
        assert runs[3] == 3 * runs[1]

    def test_replicas_validated_against_world(self):
        with pytest.raises(ValueError, match="replicas"):
            EngineConfig(n_ranks=4, replicas=4)
        with pytest.raises(ValueError, match="replicas"):
            EngineConfig(n_ranks=4, replicas=-1)


class TestPermanentLoss:
    """Permanent rank loss: the run finishes on the shrunken world with
    answers, per-iteration Δ fingerprints and iteration counts identical
    to the fault-free run."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("replicas", (1, 2))
    def test_sssp_degraded_equivalence(
        self, medium_weighted_graph, executor, replicas
    ):
        sources = list(range(10))
        base = run_sssp(
            medium_weighted_graph, sources,
            _cfg(executor, delta_fingerprints=True),
        ).fixpoint
        faulty = run_sssp(
            medium_weighted_graph, sources,
            _cfg(executor, PERM, checkpoint_every=2,
                 replicas=replicas, delta_fingerprints=True),
        ).fixpoint
        assert faulty.recovery.injected.permanent_crashes == 1
        assert _invariant_fingerprint(faulty, "spath") == _invariant_fingerprint(
            base, "spath"
        )
        deg = faulty.degraded
        assert deg is not None
        assert deg.excluded_ranks == [1] and deg.epoch == 1
        assert deg.reowned_shards > 0
        assert deg.restored_tuples > 0 and deg.restored_bytes > 0
        assert len(deg.replica_sources) == 1
        dead, buddy = deg.replica_sources[0]
        assert dead == 1 and buddy not in (1,)
        # The dead rank owns nothing after re-owning.
        for _name, rel in sorted(faulty.relations.items()):
            assert rel.full_sizes_by_rank()[1] == 0
        # Restore + re-owning are charged to the modeled ledger.
        assert faulty.ledger.comm.by_kind.get("replica", 0) > 0
        assert faulty.ledger.comm.by_kind.get("reown", 0) > 0
        assert faulty.ledger.phase_seconds.get("recovery", 0) > 0
        rec = faulty.recovery
        assert rec.failures == 1 and rec.recoveries == 1

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_cc_degraded_equivalence(self, medium_graph, executor):
        base = run_cc(
            medium_graph, _cfg(executor, delta_fingerprints=True)
        ).fixpoint
        faulty = run_cc(
            medium_graph,
            _cfg(executor, PERM, checkpoint_every=2, replicas=1,
                 delta_fingerprints=True),
        ).fixpoint
        assert _invariant_fingerprint(faulty, "cc") == _invariant_fingerprint(
            base, "cc"
        )
        assert faulty.degraded is not None
        assert faulty.degraded.excluded_ranks == [1]

    def test_executors_agree_on_degraded_world(self, medium_weighted_graph):
        """Scalar and columnar degraded runs must agree on the FULL
        summary with each other — they shrink to the same world."""
        sources = list(range(10))
        runs = {
            ex: run_sssp(
                medium_weighted_graph, sources,
                _cfg(ex, PERM, checkpoint_every=2, replicas=1),
            ).fixpoint
            for ex in EXECUTORS
        }
        assert runs["scalar"].summary() == runs["columnar"].summary()

    def test_ring_wraparound_buddy(self, medium_weighted_graph):
        """Losing the last rank in the ring restores from rank 0."""
        perm_last = FaultConfig(seed=33, crash_perm_rank=3,
                                crash_perm_superstep=12)
        sources = list(range(10))
        base = run_sssp(
            medium_weighted_graph, sources,
            _cfg("columnar", delta_fingerprints=True),
        ).fixpoint
        faulty = run_sssp(
            medium_weighted_graph, sources,
            _cfg("columnar", perm_last, checkpoint_every=2, replicas=1,
                 delta_fingerprints=True),
        ).fixpoint
        assert _invariant_fingerprint(faulty, "spath") == _invariant_fingerprint(
            base, "spath"
        )
        assert faulty.degraded.replica_sources == [(3, 0)]

    def test_unreplicated_loss_is_unrecoverable(self, medium_weighted_graph):
        """replicas=0 + permanent loss must fail loudly, with a message
        that says how to fix it — never a silent wrong answer."""
        with pytest.raises(UnrecoverableRankLoss, match="--replicas"):
            run_sssp(
                medium_weighted_graph, list(range(10)),
                _cfg("columnar", PERM, checkpoint_every=2),
            )

    def test_permanent_loss_without_checkpoint_raises(
        self, medium_weighted_graph
    ):
        with pytest.raises(RankFailure):
            run_sssp(
                medium_weighted_graph, list(range(10)),
                _cfg("columnar", PERM, replicas=1),
            )

    def test_degraded_report_fields(self, medium_weighted_graph):
        faulty = run_sssp(
            medium_weighted_graph, list(range(10)),
            _cfg("columnar", PERM, checkpoint_every=2, replicas=2),
        ).fixpoint
        d = faulty.degraded.as_dict()
        assert d["excluded_ranks"] == [1]
        assert d["epoch"] == 1
        assert d["reowned_shards"] > 0
        assert d["restored_bytes"] > 0
        assert d["reown_seconds"] > 0
        assert faulty.recovery.as_dict()["injected"]["permanent_crashes"] == 1


class TestCheckpointRoundTrip:
    """Property: capture → arbitrary mutation → restore is an exact
    round-trip of every observable the fixpoint loop reads — tuple sets,
    both version generations, and the sub-bucket schema."""

    @staticmethod
    def _observe(rel):
        return (
            rel.as_set(),
            set(rel.iter_delta()),
            rel.full_gen,
            rel.delta_gen,
            rel.schema,
        )

    @given(
        first=st.lists(
            st.tuples(st.integers(0, 63), st.integers(0, 63)),
            min_size=1, max_size=40,
        ),
        second=st.lists(
            st.tuples(st.integers(0, 63), st.integers(0, 63)),
            max_size=40,
        ),
        sub0=st.integers(1, 8),
        sub1=st.integers(1, 8),
        layout=st.sampled_from(["scalar", "columnar"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_capture_restore_exact(self, first, second, sub0, sub1, layout):
        import dataclasses

        from repro.faults import checkpoint as ckpt_mod
        from repro.relational.schema import Schema
        from repro.relational.storage import RelationStore

        store = RelationStore(4, layout=layout)
        rel = store.declare(
            Schema(name="r", arity=2, join_cols=(0,), n_subbuckets=sub0)
        )
        rel.load(first)
        rel.advance()
        before = self._observe(rel)

        ckpt = ckpt_mod.capture(
            store, ["r"], stratum=0, iteration=0, changed=True,
            iterations_total=1, counters={"admitted": len(first)},
            trace_len=0,
        )

        # Mutate everything the loop mutates: more tuples, another Δ
        # promotion, and a sub-bucket resize (the rebalancer's move).
        rel.load(second)
        rel.advance()
        if sub1 != sub0:
            rel.set_schema(dataclasses.replace(rel.schema, n_subbuckets=sub1))

        ckpt_mod.restore(store, ckpt)
        assert self._observe(rel) == before
        assert ckpt.counters == {"admitted": len(first)}

        # The checkpoint survives rollback: a second failure inside the
        # same interval restores from the same boundary again.
        rel.load(second)
        rel.advance()
        ckpt_mod.restore(store, ckpt)
        assert self._observe(rel) == before

    @given(
        superstep=st.integers(4, 20),
        seed=st.integers(0, 2**16),
        replicas=st.integers(1, 3),
    )
    @settings(max_examples=12, deadline=None)
    def test_permanent_loss_accounting_invariants(
        self, superstep, seed, replicas
    ):
        """Whatever the crash schedule, the books must balance: one
        failure ↔ one recovery ↔ one excluded rank, replica traffic
        strictly positive, and the answers fault-free-identical."""
        from repro.graphs.types import Graph

        edges = np.array(
            [(0, 1, 4), (0, 2, 9), (1, 2, 1), (2, 3, 2),
             (3, 1, 1), (1, 4, 7), (3, 4, 3), (5, 6, 1), (4, 5, 2)],
            dtype=np.int64,
        )
        graph = Graph(edges=edges, n_nodes=7, name="fixture")
        base = run_sssp(graph, [0, 5], _cfg("columnar")).fixpoint
        faults = FaultConfig(
            seed=seed, crash_perm_rank=1, crash_perm_superstep=superstep
        )
        faulty = run_sssp(
            graph, [0, 5],
            _cfg("columnar", faults, checkpoint_every=1, replicas=replicas),
        ).fixpoint
        assert faulty.query("spath") == base.query("spath")
        rec = faulty.recovery
        assert rec.replica_bytes > 0
        fired = rec.injected.permanent_crashes
        assert fired in (0, 1)  # schedule may land past the fixpoint
        assert rec.failures == rec.recoveries == fired
        if fired:
            deg = faulty.degraded
            assert deg is not None
            assert deg.excluded_ranks == [1] and deg.epoch == 1
            assert len(deg.replica_sources) == 1
            assert rec.recovery_seconds > 0
        else:
            assert faulty.degraded is None
