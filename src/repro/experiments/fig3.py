"""Figure 3 — cumulative density of tuple distribution across ranks.

Paper: on 4,096 ranks, the Twitter edge relation under one sub-bucket
leaves the largest rank with ~10× the tuples of the smallest; 8
sub-buckets reduce the spread to ~2×.  This is a pure placement
measurement (no fixpoint), so it runs at the paper's full rank count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.balancer import ImbalanceReport, measure_imbalance
from repro.experiments.common import ExperimentDefaults, defaults_from_env, render_table
from repro.graphs.datasets import load_dataset
from repro.relational.distribution import Distribution
from repro.relational.schema import Schema

N_RANKS = 4096
SUBBUCKET_VARIANTS = (1, 8)


@dataclass
class Fig3Result:
    n_ranks: int
    reports: Dict[int, ImbalanceReport]  # n_subbuckets -> report

    def cdf(self, n_subbuckets: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.reports[n_subbuckets].cdf()


def run_fig3(
    defaults: Optional[ExperimentDefaults] = None,
    *,
    n_ranks: int = N_RANKS,
) -> Fig3Result:
    d = defaults or defaults_from_env(default_shift=0)
    graph = load_dataset(
        "twitter_like", seed=d.seed, scale_shift=d.scale_shift, weighted=False
    )
    reports: Dict[int, ImbalanceReport] = {}
    for n_sub in SUBBUCKET_VARIANTS:
        schema = Schema(
            name="edge", arity=2, join_cols=(0,), n_subbuckets=n_sub
        )
        dist = Distribution(schema, n_ranks)
        reports[n_sub] = measure_imbalance(graph.edges[:, :2], dist)
    return Fig3Result(n_ranks=n_ranks, reports=reports)


def render(result: Fig3Result) -> str:
    rows: List[List[object]] = []
    for n_sub, rep in sorted(result.reports.items()):
        rows.append(
            [
                n_sub,
                rep.total_tuples,
                rep.max_tuples,
                rep.min_tuples,
                f"{rep.mean_tuples:.1f}",
                f"{rep.ratio_max_mean:.2f}",
                ("inf" if rep.ratio_max_min == float("inf") else f"{rep.ratio_max_min:.2f}"),
            ]
        )
    return render_table(
        ["subbuckets", "tuples", "max", "min", "mean", "max/mean", "max/min"],
        rows,
        title=f"Fig. 3 — tuple distribution across {result.n_ranks} ranks (twitter_like)",
    )
