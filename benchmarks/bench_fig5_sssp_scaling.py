"""Figure 5 — SSSP strong scaling (twitter stand-in, 30 sources).

Paper: 96% runtime reduction 256 -> 16,384 ranks; near-perfect scaling
until ~2k, still improving (26%) from 8,192 to 16,384.  At our reduced
graph scale the saturation point arrives earlier (see EXPERIMENTS.md
"Calibration"), but the monotone-decrease shape holds.
"""

from repro.experiments import fig5


def test_fig5_sssp_strong_scaling(once, defaults):
    result = once(fig5.run_fig5, defaults)
    print()
    print(fig5.render(result))
    ranks = sorted(result.total)
    # total modeled time decreases from the smallest to the largest config
    assert result.total[ranks[-1]] < result.total[ranks[0]]
    # and the early doubling is the most profitable (near-linear region)
    first_gain = result.total[ranks[0]] / result.total[ranks[1]]
    last_gain = result.total[ranks[-2]] / result.total[ranks[-1]]
    assert first_gain > last_gain
